#include "quant/step_size.h"

#include <cmath>

#include "tensor/stats.h"

namespace errorflow {
namespace quant {

namespace {

// RMS of 2^floor(log2 |w|) over elements. Zeros contribute zero.
double RmsExponentStep(const tensor::Tensor& w) {
  if (w.size() == 0) return 0.0;
  double acc = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    const double a = std::fabs(static_cast<double>(w[i]));
    if (a == 0.0) continue;
    acc += std::exp2(2.0 * std::floor(std::log2(a)));
  }
  return std::sqrt(acc / static_cast<double>(w.size()));
}

// FP16 RMS step with the 2^-10 mantissa multiplier folded in, the -14
// exponent floor (subnormal clamp), and saturation accounting: |w| beyond
// the largest finite half (65504) rounds to exactly 65504, a deterministic
// error of d = |w| - 65504 that the exponent model would silently
// understate. Such an element contributes the uniform-step equivalent of
// that error (12 d^2 — a step q has RMS error q/sqrt(12)), never less than
// the top-binade step it would contribute if it were in range. Bit-exact
// with the old 2^-10 * RMS(2^e) formula for all-in-range tensors (every
// per-element term is rescaled by the exact power 2^-20).
double Fp16Step(const tensor::Tensor& w) {
  if (w.size() == 0) return 0.0;
  double acc = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    const double a = std::fabs(static_cast<double>(w[i]));
    if (a == 0.0) continue;
    if (a > 65504.0) {
      const double d = a - 65504.0;
      // Top-binade in-range step is 2^(15-10); saturated elements never
      // contribute less than that.
      acc += std::max(12.0 * d * d, std::exp2(2.0 * 5.0));
      continue;
    }
    const double e = std::max(-14.0, std::floor(std::log2(a)));
    acc += std::exp2(2.0 * (e - 10.0));
  }
  return std::sqrt(acc / static_cast<double>(w.size()));
}

}  // namespace

double AverageStepSize(const tensor::Tensor& w, NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return std::exp2(-23.0) * RmsExponentStep(w);
    case NumericFormat::kTF32:
      return std::exp2(-10.0) * RmsExponentStep(w);
    case NumericFormat::kFP16:
      return Fp16Step(w);
    case NumericFormat::kBF16:
      return std::exp2(-7.0) * RmsExponentStep(w);
    case NumericFormat::kINT8:
      // Matches the achieved max-calibration scale (CalibrateMax spreads
      // the value range over 255 steps, not 256): a bound computed from
      // range/256 would be tighter than the error the quantizer can
      // actually achieve.
      return tensor::ValueRange(w) / 255.0;
  }
  return 0.0;
}

}  // namespace quant
}  // namespace errorflow
