#include "quant/step_size.h"

#include <cmath>

#include "tensor/stats.h"

namespace errorflow {
namespace quant {

namespace {

// RMS of 2^floor(log2 |w|) over elements, with optional exponent floor
// (FP16 subnormal clamp). Zeros contribute zero.
double RmsExponentStep(const tensor::Tensor& w, bool clamp_fp16) {
  if (w.size() == 0) return 0.0;
  double acc = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    const double a = std::fabs(static_cast<double>(w[i]));
    if (a == 0.0) continue;
    double e = std::floor(std::log2(a));
    if (clamp_fp16) e = std::max(-14.0, e);
    acc += std::exp2(2.0 * e);
  }
  return std::sqrt(acc / static_cast<double>(w.size()));
}

}  // namespace

double AverageStepSize(const tensor::Tensor& w, NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return std::exp2(-23.0) * RmsExponentStep(w, /*clamp_fp16=*/false);
    case NumericFormat::kTF32:
      return std::exp2(-10.0) * RmsExponentStep(w, /*clamp_fp16=*/false);
    case NumericFormat::kFP16:
      return std::exp2(-10.0) * RmsExponentStep(w, /*clamp_fp16=*/true);
    case NumericFormat::kBF16:
      return std::exp2(-7.0) * RmsExponentStep(w, /*clamp_fp16=*/false);
    case NumericFormat::kINT8:
      return std::exp2(-8.0) * tensor::ValueRange(w);
  }
  return 0.0;
}

}  // namespace quant
}  // namespace errorflow
