#include "quant/quantize_model.h"

#include <cmath>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "quant/affine.h"
#include "quant/step_size.h"

namespace errorflow {
namespace quant {

namespace {

using tensor::Tensor;

LayerQuantRecord QuantizeTensor(const std::string& name, Tensor* w,
                                NumericFormat format) {
  LayerQuantRecord rec;
  rec.layer = name;
  rec.format = format;
  rec.step_size = AverageStepSize(*w, format);
  const Tensor original = *w;
  if (format == NumericFormat::kINT8) {
    QuantizeDequantizeInt8(w);
  } else {
    RoundBufferToFormat(w->data(), w->size(), format);
  }
  double max_delta = 0.0;
  for (int64_t i = 0; i < w->size(); ++i) {
    max_delta = std::max(
        max_delta, std::fabs(static_cast<double>((*w)[i]) - original[i]));
  }
  rec.max_abs_delta = max_delta;
  return rec;
}

}  // namespace

QuantizedModel QuantizeWeights(const nn::Model& model, NumericFormat format) {
  QuantizedModel out;
  out.model = model.Clone();
  out.model.set_name(model.name() + "." + FormatToString(format));
  out.format = format;
  out.model.FoldPsn();
  if (format == NumericFormat::kFP32) return out;
  out.model.VisitLayers([&out, format](nn::Layer* layer) {
    if (auto* d = dynamic_cast<nn::DenseLayer*>(layer)) {
      out.layers.push_back(
          QuantizeTensor(d->ToString(), &d->mutable_weight(), format));
    } else if (auto* c = dynamic_cast<nn::Conv2dLayer*>(layer)) {
      out.layers.push_back(
          QuantizeTensor(c->ToString(), &c->mutable_weight(), format));
    }
  });
  return out;
}

int64_t ModelStorageBytes(const nn::Model& model, NumericFormat format) {
  // ParameterCount is non-const (it walks mutable Param views); a const_cast
  // is safe because the walk never writes.
  const int64_t params =
      const_cast<nn::Model&>(model).ParameterCount();
  return params * static_cast<int64_t>(StorageBits(format)) / 8;
}

}  // namespace quant
}  // namespace errorflow
