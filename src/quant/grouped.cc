#include "quant/grouped.h"

#include <cmath>

#include "util/macros.h"

namespace errorflow {
namespace quant {

namespace {

using tensor::Tensor;

// Applies `fn(row_begin, row_end, col_begin, col_end)` over the group grid
// of a (rows x cols) matrix under `config`; returns the group count.
template <typename Fn>
int64_t ForEachGroup(int64_t rows, int64_t cols, const GroupedConfig& config,
                     Fn&& fn) {
  int64_t gr = rows, gc = cols;  // Group extent.
  switch (config.scheme) {
    case GroupScheme::kPerTensor:
      gr = rows;
      gc = cols;
      break;
    case GroupScheme::kPerRow:
      gr = 1;
      gc = cols;
      break;
    case GroupScheme::kPerColumn:
      gr = rows;
      gc = 1;
      break;
    case GroupScheme::kBlock:
      gr = std::max<int64_t>(1, std::min(config.block_rows, rows));
      gc = std::max<int64_t>(1, std::min(config.block_cols, cols));
      break;
  }
  int64_t count = 0;
  for (int64_t r = 0; r < rows; r += gr) {
    for (int64_t c = 0; c < cols; c += gc) {
      fn(r, std::min(rows, r + gr), c, std::min(cols, c + gc));
      ++count;
    }
  }
  return count;
}

// Min/max of a sub-rectangle.
void GroupRange(const Tensor& w, int64_t r0, int64_t r1, int64_t c0,
                int64_t c1, float* mn, float* mx) {
  *mn = w.at(r0, c0);
  *mx = w.at(r0, c0);
  for (int64_t r = r0; r < r1; ++r) {
    for (int64_t c = c0; c < c1; ++c) {
      *mn = std::min(*mn, w.at(r, c));
      *mx = std::max(*mx, w.at(r, c));
    }
  }
}

}  // namespace

const char* GroupSchemeToString(GroupScheme scheme) {
  switch (scheme) {
    case GroupScheme::kPerTensor:
      return "per-tensor";
    case GroupScheme::kPerRow:
      return "per-row";
    case GroupScheme::kPerColumn:
      return "per-column";
    case GroupScheme::kBlock:
      return "block";
  }
  return "unknown";
}

int64_t QuantizeDequantizeInt8Grouped(Tensor* w,
                                      const GroupedConfig& config) {
  EF_CHECK(w->ndim() == 2);
  const int64_t rows = w->dim(0), cols = w->dim(1);
  return ForEachGroup(
      rows, cols, config,
      [w](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
        float mn, mx;
        GroupRange(*w, r0, r1, c0, c1, &mn, &mx);
        const double range = static_cast<double>(mx) - mn;
        if (range <= 0.0) return;  // Constant group reconstructs exactly.
        const double scale = range / 255.0;
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t c = c0; c < c1; ++c) {
            const double q =
                std::nearbyint((w->at(r, c) - mn) / scale);
            w->at(r, c) = static_cast<float>(mn + q * scale);
          }
        }
      });
}

double GroupedInt8StepSize(const Tensor& w, const GroupedConfig& config) {
  EF_CHECK(w.ndim() == 2);
  const int64_t rows = w.dim(0), cols = w.dim(1);
  if (w.size() == 0) return 0.0;
  double acc = 0.0;
  ForEachGroup(rows, cols, config,
               [&w, &acc](int64_t r0, int64_t r1, int64_t c0, int64_t c1) {
                 float mn, mx;
                 GroupRange(w, r0, r1, c0, c1, &mn, &mx);
                 const double q =
                     (static_cast<double>(mx) - mn) / 256.0;
                 acc += q * q *
                        static_cast<double>((r1 - r0) * (c1 - c0));
               });
  return std::sqrt(acc / static_cast<double>(w.size()));
}

}  // namespace quant
}  // namespace errorflow
