#include "quant/activation_quant.h"

#include "quant/affine.h"

namespace errorflow {
namespace quant {

tensor::Tensor PredictWithQuantizedActivations(nn::Model* model,
                                               const tensor::Tensor& input,
                                               NumericFormat format) {
  tensor::Tensor cur = input;
  tensor::Tensor next;
  for (auto& layer : model->mutable_layers()) {
    layer->Forward(cur, &next, /*training=*/false);
    const nn::LayerKind kind = layer->kind();
    if (format != NumericFormat::kFP32 &&
        (kind == nn::LayerKind::kDense || kind == nn::LayerKind::kConv2d ||
         kind == nn::LayerKind::kResidualBlock)) {
      if (format == NumericFormat::kINT8) {
        QuantizeDequantizeInt8(&next);
      } else {
        RoundBufferToFormat(next.data(), next.size(), format);
      }
    }
    cur = std::move(next);
    next = tensor::Tensor();
  }
  return cur;
}

}  // namespace quant
}  // namespace errorflow
