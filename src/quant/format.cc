#include "quant/format.h"

#include <cmath>
#include <cstring>

#include "util/macros.h"

namespace errorflow {
namespace quant {

const char* FormatToString(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return "fp32";
    case NumericFormat::kTF32:
      return "tf32";
    case NumericFormat::kFP16:
      return "fp16";
    case NumericFormat::kBF16:
      return "bf16";
    case NumericFormat::kINT8:
      return "int8";
  }
  return "unknown";
}

const char* QuantizerToString(WeightQuantizer quantizer) {
  switch (quantizer) {
    case WeightQuantizer::kMaxAffine:
      return "max-affine";
    case WeightQuantizer::kOptq:
      return "optq";
    case WeightQuantizer::kSpfq:
      return "spfq";
  }
  return "unknown";
}

int MantissaBits(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return 23;
    case NumericFormat::kTF32:
      return 10;
    case NumericFormat::kFP16:
      return 10;
    case NumericFormat::kBF16:
      return 7;
    case NumericFormat::kINT8:
      return 0;
  }
  return 0;
}

int StorageBits(NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return 32;
    case NumericFormat::kTF32:
      return 19;
    case NumericFormat::kFP16:
      return 16;
    case NumericFormat::kBF16:
      return 16;
    case NumericFormat::kINT8:
      return 8;
  }
  return 32;
}

namespace {

// Rounds the FP32 mantissa of `v` to `keep_bits` fraction bits with
// round-to-nearest-even, preserving FP32's exponent range. This is exactly
// what TF32 (keep 10) and BF16 (keep 7) conversion does for normal values.
float RoundMantissaRne(float v, int keep_bits) {
  if (!std::isfinite(v) || v == 0.0f) return v;
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const int drop = 23 - keep_bits;
  const uint32_t mask = (1u << drop) - 1u;
  const uint32_t remainder = bits & mask;
  const uint32_t halfway = 1u << (drop - 1);
  bits &= ~mask;
  if (remainder > halfway ||
      (remainder == halfway && ((bits >> drop) & 1u) != 0)) {
    bits += (1u << drop);  // May carry into the exponent: correct rounding.
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

// Bit-exact FP32 -> FP16 -> FP32 round trip with RNE, subnormal support,
// and overflow clamped to +-max finite half (65504), matching saturating
// hardware conversions used for weights.
float RoundToHalf(float v) {
  if (std::isnan(v)) return v;
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint32_t sign = bits >> 31;
  const int32_t exp = static_cast<int32_t>((bits >> 23) & 0xFF) - 127;
  const uint32_t frac = bits & 0x7FFFFF;
  const float sgn = sign != 0 ? -1.0f : 1.0f;

  if (exp > 15 || (exp == 15 && frac > 0x7FE000)) {
    // Beyond half range (would round above 65504): saturate.
    return sgn * 65504.0f;
  }
  if (exp >= -14) {
    // Normal half: round 23-bit fraction to 10 bits.
    return RoundMantissaRne(v, 10);
  }
  // Subnormal half: quantum is 2^-24.
  const double q = std::nearbyint(static_cast<double>(v) * 0x1.0p24);
  return static_cast<float>(q * 0x1.0p-24);
}

}  // namespace

float RoundToFormat(float v, NumericFormat format) {
  switch (format) {
    case NumericFormat::kFP32:
      return v;
    case NumericFormat::kTF32:
      return RoundMantissaRne(v, 10);
    case NumericFormat::kFP16:
      return RoundToHalf(v);
    case NumericFormat::kBF16:
      return RoundMantissaRne(v, 7);
    case NumericFormat::kINT8:
      break;
  }
  EF_CHECK(false && "INT8 requires per-tensor calibration; see affine.h");
  return v;
}

void RoundBufferToFormat(float* data, int64_t n, NumericFormat format) {
  if (format == NumericFormat::kFP32) return;
  for (int64_t i = 0; i < n; ++i) data[i] = RoundToFormat(data[i], format);
}

}  // namespace quant
}  // namespace errorflow
