#ifndef ERRORFLOW_QUANT_ACTIVATION_QUANT_H_
#define ERRORFLOW_QUANT_ACTIVATION_QUANT_H_

#include "nn/model.h"
#include "quant/format.h"

namespace errorflow {
namespace quant {

/// \brief Inference with quantized activations (Sec. III-B: "the error
/// introduced by activation quantization can be addressed similarly to
/// compression error ... excluding all layers preceding the affected
/// activation").
///
/// Runs the model layer by layer and rounds the output of every top-level
/// Dense / Conv2d / ResidualBlock to `format` (float formats: bit-exact
/// mantissa rounding; INT8: per-tensor max-calibrated affine), emulating a
/// pipeline whose intermediate tensors live in the reduced format. Weights
/// should already be quantized (e.g. via QuantizeWeights) if weight
/// quantization is also desired.
///
/// The matching bound is `core::ErrorFlowAnalysis::
/// QuantTermWithActivations`, which injects an activation-rounding error
/// at exactly these points.
tensor::Tensor PredictWithQuantizedActivations(nn::Model* model,
                                               const tensor::Tensor& input,
                                               NumericFormat format);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_ACTIVATION_QUANT_H_
