#ifndef ERRORFLOW_QUANT_AFFINE_H_
#define ERRORFLOW_QUANT_AFFINE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace errorflow {
namespace quant {

using tensor::Tensor;

/// \brief Per-tensor uniform affine quantization parameters with max
/// calibration (Sec. III-A): real = scale * (q - zero_point).
struct AffineParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Computes max-calibration parameters covering [min(W), max(W)] with 256
/// levels. Degenerate (constant) tensors yield scale such that
/// dequantization is exact.
AffineParams CalibrateMax(const Tensor& t);

/// Quantizes to int8 codes using `params`.
///
/// Edge-value policy (identical on the scalar and SIMD paths, pinned by
/// tests against QuantizeAffineScalar):
///  - NaN quantizes to the clamped zero point (dequantizes to 0.0);
///  - +/-Inf clamps to the endpoint codes 127 / -128;
///  - exact .5 ties round to nearest-even (nearbyintf semantics).
std::vector<int8_t> QuantizeAffine(const Tensor& t, const AffineParams& p);

/// Reference implementation of QuantizeAffine that never takes the SIMD
/// path. Bit-exact with QuantizeAffine on every input, including NaN/Inf
/// and range endpoints; used by tests to pin scalar/SIMD agreement.
std::vector<int8_t> QuantizeAffineScalar(const Tensor& t,
                                         const AffineParams& p);

/// Reconstructs a float tensor from int8 codes.
Tensor DequantizeAffine(const std::vector<int8_t>& codes,
                        const tensor::Shape& shape, const AffineParams& p);

/// Convenience: in-place quantize-dequantize round trip — the value error
/// that weight-only INT8 inference observes.
void QuantizeDequantizeInt8(Tensor* t);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_AFFINE_H_
