#ifndef ERRORFLOW_QUANT_HARDWARE_MODEL_H_
#define ERRORFLOW_QUANT_HARDWARE_MODEL_H_

#include <string>

#include "nn/model.h"
#include "quant/format.h"

namespace errorflow {
namespace quant {

/// \brief Calibrated GPU execution-throughput model.
///
/// The paper measures model-execution throughput on an RTX 3080 Ti
/// (Figs. 2, 9, 10-15). Tensor-core hardware is not available here, so —
/// per the substitution documented in DESIGN.md — execution time is modeled
/// as
///
///   time(format) = flops_per_sample / (fp32_flops_per_sec *
///                                      speedup(format))
///
/// with the FP32 base rate and the per-format speedups calibrated to the
/// paper's RTX 3080 Ti observations: FP16 up to 4.5x (Sec. IV-C), INT8
/// comparable-or-better, TF32/BF16 "little speedup". Achieved *errors* are
/// never modeled — those are bit-exact; only wall-clock execution speed is.
struct HardwareProfile {
  std::string name = "rtx3080ti-model";
  /// Sustained FP32 MLP/conv throughput in multiply-accumulates per second.
  double fp32_flops_per_sec = 1.2e13;
  double speedup_tf32 = 1.25;
  double speedup_fp16 = 4.5;
  double speedup_bf16 = 1.35;
  double speedup_int8 = 5.2;

  /// Per-format speedup factor relative to FP32.
  double Speedup(NumericFormat format) const;
};

/// \brief Execution-throughput estimator for a model under a profile.
class ExecutionModel {
 public:
  /// `flops_per_sample` from Model::FlopsPerSample;
  /// `bytes_per_sample` the FP32 input payload per sample.
  ExecutionModel(const HardwareProfile& profile, int64_t flops_per_sample,
                 int64_t bytes_per_sample);

  /// Seconds to execute one sample at the given precision.
  double SecondsPerSample(NumericFormat format) const;

  /// Samples per second at the given precision.
  double SamplesPerSecond(NumericFormat format) const;

  /// Data-ingestion throughput in bytes of (uncompressed) input consumed
  /// per second when execution runs at the given precision — the y-axis of
  /// Fig. 9.
  double IngestBytesPerSecond(NumericFormat format) const;

  const HardwareProfile& profile() const { return profile_; }

 private:
  HardwareProfile profile_;
  int64_t flops_per_sample_;
  int64_t bytes_per_sample_;
};

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_HARDWARE_MODEL_H_
