#ifndef ERRORFLOW_QUANT_FORMAT_H_
#define ERRORFLOW_QUANT_FORMAT_H_

#include <cstdint>
#include <vector>

namespace errorflow {
namespace quant {

/// \brief Numerical formats evaluated in the paper (Figs. 5/6/9, Table I).
///
/// FP32 is the full-precision baseline. The reduced formats share FP32's
/// 8-bit exponent except FP16 (5-bit exponent, hence the subnormal clamp in
/// its Table-I step size). INT8 is uniform affine with max calibration.
enum class NumericFormat : uint8_t {
  kFP32 = 0,
  kTF32 = 1,
  kFP16 = 2,
  kBF16 = 3,
  kINT8 = 4,
};

/// All reduced-precision formats, in decreasing-precision order as plotted
/// in the paper's figures.
inline const std::vector<NumericFormat>& ReducedFormats() {
  static const std::vector<NumericFormat> kFormats = {
      NumericFormat::kTF32, NumericFormat::kFP16, NumericFormat::kBF16,
      NumericFormat::kINT8};
  return kFormats;
}

/// Lowercase canonical name: "fp32", "tf32", "fp16", "bf16", "int8".
const char* FormatToString(NumericFormat format);

/// \brief Weight-quantizer family applied when a model variant is
/// materialized at a reduced format.
///
/// kMaxAffine is the paper's Table-I family: bit-exact mantissa rounding
/// for the float formats, per-tensor max-calibration affine for INT8.
/// kOptq / kSpfq are the data-driven INT8 quantizers (src/quant/optq.h):
/// greedy error-feedback rounding against a calibration-activation Gram,
/// with per-output-channel scales; kSpfq replaces the greedy nearest
/// rounding with SPFQ-style stochastic rounding (fixed seed, still
/// deterministic). Both only apply to kINT8 — float formats have no
/// calibration degree of freedom.
enum class WeightQuantizer : uint8_t {
  kMaxAffine = 0,
  kOptq = 1,
  kSpfq = 2,
};

/// Lowercase canonical name: "max-affine", "optq", "spfq".
const char* QuantizerToString(WeightQuantizer quantizer);

/// Number of explicit mantissa (fraction) bits: 23/10/10/7; 0 for INT8.
int MantissaBits(NumericFormat format);

/// Storage bits per weight for the memory/bandwidth model.
/// TF32 occupies 19 bits logically (stored as 32 in practice; we report the
/// logical width used by the paper's bandwidth discussion).
int StorageBits(NumericFormat format);

/// \brief Rounds `v` to the nearest value representable in `format`
/// (round-to-nearest-even), bit-exactly emulating hardware conversion.
///
/// FP16 handles subnormals and clamps overflow to +-65504. TF32/BF16 share
/// FP32's exponent range, so only the mantissa is rounded. INT8 is not a
/// per-value format (it needs per-tensor calibration) — use
/// `QuantizeDequantizeInt8` from affine.h; calling this with kINT8 aborts.
float RoundToFormat(float v, NumericFormat format);

/// Rounds every element of a buffer in place (float formats only).
void RoundBufferToFormat(float* data, int64_t n, NumericFormat format);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_FORMAT_H_
