#ifndef ERRORFLOW_QUANT_GROUPED_H_
#define ERRORFLOW_QUANT_GROUPED_H_

#include <string>

#include "quant/affine.h"
#include "tensor/tensor.h"

namespace errorflow {
namespace quant {

/// \brief Granularity of INT8 affine quantization (the paper's Sec. VI
/// future work: "block-wise, column-wise, or row-wise schemes ... can
/// offer tighter quantization and reduced accuracy loss compared to
/// uniform per-layer quantization").
///
/// Each group gets its own max-calibrated (scale, zero point), capturing
/// the local weight range. Finer groups mean smaller local ranges, hence
/// smaller steps and smaller error — at the cost of more metadata and more
/// complex kernels (which is why the paper's main experiments stay
/// per-tensor).
enum class GroupScheme {
  kPerTensor,
  kPerRow,
  kPerColumn,
  kBlock,
};

const char* GroupSchemeToString(GroupScheme scheme);

/// \brief Grouped-quantization configuration.
struct GroupedConfig {
  GroupScheme scheme = GroupScheme::kPerTensor;
  /// Block dims for kBlock (clamped to the matrix extent).
  int64_t block_rows = 32;
  int64_t block_cols = 32;
};

/// \brief Quantize-dequantize a rank-2 weight matrix to INT8 with the
/// given grouping; the tensor holds the reconstructed values afterwards.
/// Returns the number of groups used.
int64_t QuantizeDequantizeInt8Grouped(tensor::Tensor* w,
                                      const GroupedConfig& config);

/// \brief Effective Table-I-style average step size of grouped INT8 on
/// `w`: the RMS over elements of their group's step (range_g / 2^8).
/// Feeding this into the error-flow analysis in place of the per-tensor q
/// yields the (tighter) grouped bound.
double GroupedInt8StepSize(const tensor::Tensor& w,
                           const GroupedConfig& config);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_GROUPED_H_
