#include "quant/affine.h"

#include <algorithm>
#include <cmath>

#include "tensor/stats.h"
#include "util/macros.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EF_AFFINE_X86 1
#include <immintrin.h>
#endif

namespace errorflow {
namespace quant {

namespace {

// NaN policy: a NaN weight quantizes to the (clamped) zero point, i.e. it
// dequantizes to 0.0 — the least-surprising value for a poisoned weight,
// and one both SIMD and scalar paths can produce bit-exactly. Without an
// explicit policy the two paths disagreed: the scalar min/max chain clamped
// NaN to -128 while AVX2's max_ps/min_ps propagated NaN into cvtps_epi32
// (INT_MIN, truncated to code 0).
int8_t NanCode(float zero_point) {
  return static_cast<int8_t>(
      std::min(127.0f, std::max(-128.0f, zero_point)));
}

// Scalar single-precision path: round-to-nearest-even in float, clamp in
// float *before* the integer conversion (branchless min/max), then one
// narrowing cast. The old implementation did all of this per element in
// double; the float pipeline produces identical int8 codes for every value
// the calibrated range can emit (|q| <= 128, far inside float's exact
// integer range).
void QuantizeScalar(const float* in, int64_t n, float inv_scale,
                    float zero_point, int8_t* codes) {
  const int8_t nan_code = NanCode(zero_point);
  for (int64_t i = 0; i < n; ++i) {
    float q = std::nearbyintf(in[i] * inv_scale) + zero_point;
    q = std::min(127.0f, std::max(-128.0f, q));
    codes[i] = std::isnan(in[i]) ? nan_code : static_cast<int8_t>(q);
  }
}

void DequantizeScalar(const int8_t* codes, int64_t n, float scale,
                      float zero_point, float* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scale * (static_cast<float>(codes[i]) - zero_point);
  }
}

#if defined(EF_AFFINE_X86)

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

__attribute__((target("avx2")))
void QuantizeAvx2(const float* in, int64_t n, float inv_scale,
                  float zero_point, int8_t* codes) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vzp = _mm256_set1_ps(zero_point);
  const __m256 vlo = _mm256_set1_ps(-128.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  const __m256i vnan = _mm256_set1_epi32(NanCode(zero_point));
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 raw = _mm256_loadu_ps(in + i);
    // CUR_DIRECTION = round-to-nearest-even in the default FP environment,
    // matching nearbyintf.
    __m256 v = _mm256_round_ps(_mm256_mul_ps(raw, vinv),
                               _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC);
    v = _mm256_add_ps(v, vzp);
    v = _mm256_min_ps(vhi, _mm256_max_ps(vlo, v));
    // Unordered self-compare marks the NaN lanes (Inf clamps to an
    // endpoint in min/max above, exactly as the scalar path does).
    const __m256 nan_mask = _mm256_cmp_ps(raw, raw, _CMP_UNORD_Q);
    __m256i q = _mm256_cvtps_epi32(v);
    q = _mm256_blendv_epi8(q, vnan, _mm256_castps_si256(nan_mask));
    alignas(32) int32_t lane[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), q);
    for (int j = 0; j < 8; ++j) {
      codes[i + j] = static_cast<int8_t>(lane[j]);
    }
  }
  if (i < n) QuantizeScalar(in + i, n - i, inv_scale, zero_point, codes + i);
}

__attribute__((target("avx2")))
void DequantizeAvx2(const int8_t* codes, int64_t n, float scale,
                    float zero_point, float* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vzp = _mm256_set1_ps(zero_point);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
    const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(vscale, _mm256_sub_ps(v, vzp)));
  }
  if (i < n) DequantizeScalar(codes + i, n - i, scale, zero_point, out + i);
}

#endif  // EF_AFFINE_X86

}  // namespace

AffineParams CalibrateMax(const Tensor& t) {
  AffineParams p;
  if (t.size() == 0) return p;
  const tensor::Summary s = tensor::Summarize(t);
  const double range = s.max - s.min;
  if (range <= 0.0) {
    // Constant tensor: any scale reproduces it exactly via the zero point.
    p.scale = 1.0f;
    p.zero_point =
        static_cast<int32_t>(std::lround(std::min(127.0, std::max(
            -128.0, -s.min))));
    return p;
  }
  p.scale = static_cast<float>(range / 255.0);
  // zero_point chosen so that min maps to -128.
  p.zero_point =
      static_cast<int32_t>(std::lround(-128.0 - s.min / p.scale));
  return p;
}

std::vector<int8_t> QuantizeAffine(const Tensor& t, const AffineParams& p) {
  std::vector<int8_t> codes(static_cast<size_t>(t.size()));
  const float inv_scale = 1.0f / p.scale;
  const float zero_point = static_cast<float>(p.zero_point);
#if defined(EF_AFFINE_X86)
  if (CpuHasAvx2()) {
    QuantizeAvx2(t.data(), t.size(), inv_scale, zero_point, codes.data());
    return codes;
  }
#endif
  QuantizeScalar(t.data(), t.size(), inv_scale, zero_point, codes.data());
  return codes;
}

std::vector<int8_t> QuantizeAffineScalar(const Tensor& t,
                                         const AffineParams& p) {
  std::vector<int8_t> codes(static_cast<size_t>(t.size()));
  QuantizeScalar(t.data(), t.size(), 1.0f / p.scale,
                 static_cast<float>(p.zero_point), codes.data());
  return codes;
}

Tensor DequantizeAffine(const std::vector<int8_t>& codes,
                        const tensor::Shape& shape, const AffineParams& p) {
  EF_CHECK(static_cast<int64_t>(codes.size()) == tensor::NumElements(shape));
  Tensor out(shape);
  const int64_t n = out.size();
  const float zero_point = static_cast<float>(p.zero_point);
#if defined(EF_AFFINE_X86)
  if (CpuHasAvx2()) {
    DequantizeAvx2(codes.data(), n, p.scale, zero_point, out.data());
    return out;
  }
#endif
  DequantizeScalar(codes.data(), n, p.scale, zero_point, out.data());
  return out;
}

void QuantizeDequantizeInt8(Tensor* t) {
  const AffineParams p = CalibrateMax(*t);
  const std::vector<int8_t> codes = QuantizeAffine(*t, p);
  *t = DequantizeAffine(codes, t->shape(), p);
}

}  // namespace quant
}  // namespace errorflow
