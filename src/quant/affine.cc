#include "quant/affine.h"

#include <cmath>

#include "tensor/stats.h"
#include "util/macros.h"

namespace errorflow {
namespace quant {

AffineParams CalibrateMax(const Tensor& t) {
  AffineParams p;
  if (t.size() == 0) return p;
  const tensor::Summary s = tensor::Summarize(t);
  const double range = s.max - s.min;
  if (range <= 0.0) {
    // Constant tensor: any scale reproduces it exactly via the zero point.
    p.scale = 1.0f;
    p.zero_point =
        static_cast<int32_t>(std::lround(std::min(127.0, std::max(
            -128.0, -s.min))));
    return p;
  }
  p.scale = static_cast<float>(range / 255.0);
  // zero_point chosen so that min maps to -128.
  p.zero_point =
      static_cast<int32_t>(std::lround(-128.0 - s.min / p.scale));
  return p;
}

std::vector<int8_t> QuantizeAffine(const Tensor& t, const AffineParams& p) {
  std::vector<int8_t> codes(static_cast<size_t>(t.size()));
  const double inv_scale = 1.0 / p.scale;
  for (int64_t i = 0; i < t.size(); ++i) {
    double q = std::nearbyint(t[i] * inv_scale) + p.zero_point;
    q = std::min(127.0, std::max(-128.0, q));
    codes[static_cast<size_t>(i)] = static_cast<int8_t>(q);
  }
  return codes;
}

Tensor DequantizeAffine(const std::vector<int8_t>& codes,
                        const tensor::Shape& shape, const AffineParams& p) {
  EF_CHECK(static_cast<int64_t>(codes.size()) == tensor::NumElements(shape));
  Tensor out(shape);
  for (size_t i = 0; i < codes.size(); ++i) {
    out[static_cast<int64_t>(i)] =
        p.scale * static_cast<float>(codes[i] - p.zero_point);
  }
  return out;
}

void QuantizeDequantizeInt8(Tensor* t) {
  const AffineParams p = CalibrateMax(*t);
  const std::vector<int8_t> codes = QuantizeAffine(*t, p);
  *t = DequantizeAffine(codes, t->shape(), p);
}

}  // namespace quant
}  // namespace errorflow
