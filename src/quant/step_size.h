#ifndef ERRORFLOW_QUANT_STEP_SIZE_H_
#define ERRORFLOW_QUANT_STEP_SIZE_H_

#include "quant/format.h"
#include "tensor/tensor.h"

namespace errorflow {
namespace quant {

/// \brief Average quantization step size q(W) of a weight tensor for a
/// numerical format, per Table I of the paper:
///
///   TF32: q = 2^-10 * sqrt( E[ 2^(2*floor(log2 |W_ij|)) ] )
///   FP16: q = 2^-10 * sqrt( E[ 2^(2*max(-14, floor(log2 |W_ij|))) ] )
///   BF16: q = 2^-7  * sqrt( E[ 2^(2*floor(log2 |W_ij|)) ] )
///   INT8: q = (max(W_ij) - min(W_ij)) / 255
///
/// The square root of the mean of squared per-element steps (an RMS
/// average) matches the role q plays in the variance s_l^2 = q^2/12 * ||h||^2
/// of the quantization-noise inner product (Sec. III-B). Zero-valued
/// weights contribute zero step. FP32 returns the machine-epsilon-scaled
/// RMS step (2^-23 multiplier) for completeness.
///
/// Two deviations from the table as printed:
///  - INT8 divides by 255 rather than 2^8: CalibrateMax spreads the value
///    range over the 255 steps between codes -128 and 127, so range/255 is
///    the scale the affine quantizer actually achieves — a range/256 step
///    would claim a bound tighter than the quantizer's own error.
///  - FP16 also accounts for saturation: elements with |W| > 65504 round
///    to exactly +-65504 (RoundToFormat), a deterministic error d that
///    contributes its uniform-step equivalent 12 d^2 to the mean of
///    squared steps (floored at the top-binade in-range step 2^5), where
///    the plain exponent formula would silently understate the step.
double AverageStepSize(const tensor::Tensor& w, NumericFormat format);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_STEP_SIZE_H_
