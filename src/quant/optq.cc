#include "quant/optq.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "nn/calibration.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "obs/metrics.h"
#include "quant/step_size.h"
#include "tensor/ops.h"
#include "util/macros.h"
#include "util/random.h"

namespace errorflow {
namespace quant {

namespace {

using tensor::Tensor;

struct QuantMetrics {
  obs::Counter* layers;
  obs::Counter* gram_columns;
  obs::Counter* fallbacks;
  obs::Histogram* step_ratio;
};

QuantMetrics* Metrics() {
  static QuantMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* qm = new QuantMetrics;
    qm->layers = reg.GetCounter("errorflow.quant.optq.layers");
    qm->gram_columns = reg.GetCounter("errorflow.quant.optq.gram_columns");
    qm->fallbacks = reg.GetCounter("errorflow.quant.optq.fallbacks");
    qm->step_ratio = reg.GetHistogram("errorflow.quant.optq.step_ratio",
                                      obs::Histogram::DefaultRatioBounds());
    return qm;
  }();
  return m;
}

/// Per-layer calibration statistics: the (d, d) input Gram in double
/// precision plus the number of feature vectors folded in.
struct GramAccum {
  std::vector<double> h;  // (d, d) row-major.
  int64_t d = 0;
  int64_t columns = 0;
};

/// CalibrationObserver that accumulates per-layer input Grams during the
/// single calibration forward pass. Keyed by Layer* so the capture is
/// independent of execution order (residual bodies, shortcuts).
class GramCollector : public nn::CalibrationObserver {
 public:
  explicit GramCollector(int64_t max_columns) : max_columns_(max_columns) {}

  void OnLinearInput(const nn::Layer* layer, const float* data, int64_t d,
                     int64_t n, bool features_are_rows) override {
    if (d <= 0 || n <= 0) return;
    // Evenly subsample at most max_columns_ feature vectors, then stage
    // them features-major as A (d, m) so the Gram is one GemmNT.
    const int64_t m = std::min<int64_t>(n, max_columns_);
    const double stride = static_cast<double>(n) / static_cast<double>(m);
    Tensor a({d, m});
    for (int64_t jj = 0; jj < m; ++jj) {
      const int64_t j = std::min<int64_t>(
          n - 1, static_cast<int64_t>(static_cast<double>(jj) * stride));
      if (features_are_rows) {
        // Conv im2col layout: (d, n), feature f of column j at f*n + j.
        for (int64_t f = 0; f < d; ++f) a.at(f, jj) = data[f * n + j];
      } else {
        // Dense layout: (n, d), feature f of sample j at j*d + f.
        for (int64_t f = 0; f < d; ++f) a.at(f, jj) = data[j * d + f];
      }
    }
    Tensor g({d, d});
    tensor::GemmNT(a, a, &g);

    GramAccum& acc = grams_[layer];
    if (acc.d == 0) {
      acc.d = d;
      acc.h.assign(static_cast<size_t>(d) * d, 0.0);
    }
    EF_CHECK(acc.d == d);
    for (int64_t i = 0; i < d * d; ++i) acc.h[i] += g[i];
    acc.columns += m;
  }

  const GramAccum* Find(const nn::Layer* layer) const {
    auto it = grams_.find(layer);
    return it == grams_.end() ? nullptr : &it->second;
  }

 private:
  int64_t max_columns_;
  std::map<const nn::Layer*, GramAccum> grams_;
};

/// In-place lower Cholesky of the row-major (n, n) matrix `a` (strict
/// upper triangle left stale). False on a non-SPD or non-finite pivot.
bool CholeskyLower(std::vector<double>* a, int64_t n) {
  std::vector<double>& m = *a;
  for (int64_t j = 0; j < n; ++j) {
    double diag = m[j * n + j];
    for (int64_t k = 0; k < j; ++k) diag -= m[j * n + k] * m[j * n + k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    m[j * n + j] = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double v = m[i * n + j];
      for (int64_t k = 0; k < j; ++k) v -= m[i * n + k] * m[j * n + k];
      m[i * n + j] = v / ljj;
    }
  }
  return true;
}

/// Given the lower Cholesky factor L of H (row-major (n, n)), fills
/// `hinv` with H^-1 by solving L L^T x = e_i column by column.
void InvertFromCholesky(const std::vector<double>& l, int64_t n,
                        std::vector<double>* hinv) {
  hinv->assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> y(n), x(n);
  for (int64_t col = 0; col < n; ++col) {
    for (int64_t i = 0; i < n; ++i) {
      double v = (i == col) ? 1.0 : 0.0;
      for (int64_t k = 0; k < i; ++k) v -= l[i * n + k] * y[k];
      y[i] = v / l[i * n + i];
    }
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = y[i];
      for (int64_t k = i + 1; k < n; ++k) v -= l[k * n + i] * x[k];
      x[i] = v / l[i * n + i];
    }
    for (int64_t i = 0; i < n; ++i) (*hinv)[i * n + col] = x[i];
  }
}

/// Per-output-channel affine grid, mirroring CalibrateMax's conventions
/// (range/255 with the INT8 reconciliation; constant rows get scale 1).
struct RowGrid {
  double scale;
  double zero_point;
};

RowGrid GridForRow(const float* row, int64_t d) {
  float lo = row[0], hi = row[0];
  for (int64_t i = 1; i < d; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  RowGrid g;
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  if (!(range > 0.0) || !std::isfinite(range)) {
    g.scale = 1.0;
    g.zero_point =
        std::min(127.0, std::max(-128.0, -static_cast<double>(lo)));
    return g;
  }
  g.scale = range / 255.0;
  g.zero_point = std::llround(-128.0 - static_cast<double>(lo) / g.scale);
  return g;
}

/// Quantizes one (rows, d) weight matrix in place with greedy
/// error-feedback rounding against the layer Gram, and fills `rec`.
void QuantizeLayer(const std::string& name, Tensor* w, const GramAccum* gram,
                   WeightQuantizer quantizer, const OptqConfig& config,
                   uint64_t layer_seed, OptqLayerRecord* rec) {
  const int64_t rows = w->dim(0);
  const int64_t d = w->dim(1);
  rec->layer = name;
  rec->rows = rows;
  rec->cols = d;
  rec->table_step = AverageStepSize(*w, NumericFormat::kINT8);

  QuantMetrics* metrics = Metrics();
  metrics->layers->Increment();

  // Damped Hessian proxy. A missing or degenerate Gram degrades to the
  // identity, which makes the error-feedback update a no-op (plain
  // per-channel rounding) — still valid, just not data-driven.
  const int64_t nn = d * d;
  std::vector<double> h(nn, 0.0);
  bool identity = true;
  if (gram != nullptr && gram->columns > 0) {
    double mean_diag = 0.0;
    for (int64_t i = 0; i < d; ++i) mean_diag += gram->h[i * d + i];
    mean_diag /= static_cast<double>(d);
    if (mean_diag > 0.0 && std::isfinite(mean_diag)) {
      identity = false;
      rec->calib_columns = gram->columns;
      metrics->gram_columns->Increment(
          static_cast<uint64_t>(gram->columns));
      double lambda = config.damping * mean_diag;
      bool ok = false;
      for (int attempt = 0; attempt < 6 && !ok; ++attempt) {
        h = gram->h;
        for (int64_t i = 0; i < d; ++i) h[i * d + i] += lambda;
        ok = CholeskyLower(&h, d);
        lambda *= 10.0;
      }
      if (!ok) identity = true;
    }
  }
  if (identity) {
    metrics->fallbacks->Increment();
    rec->calib_columns = 0;
  }

  // U is the upper Cholesky factor of H^-1 (H^-1 = U^T U): after rounding
  // column j, subtracting err_j * U[j][j:] from the remaining columns is
  // the exact least-squares compensation for || (W - What) X ||. Under the
  // identity fallback U == I and the loop reduces to independent rounding.
  std::vector<double> u;  // (d, d) row-major, upper triangular.
  if (!identity) {
    std::vector<double> hinv;
    InvertFromCholesky(h, d, &hinv);
    // Lower Cholesky M of H^-1 = M M^T gives H^-1 = (M^T)^T (M^T), so the
    // upper factor is U = M^T. Numerical failure here (H^-1 barely SPD in
    // double) also falls back to identity.
    if (CholeskyLower(&hinv, d)) {
      u.assign(static_cast<size_t>(d) * d, 0.0);
      for (int64_t i = 0; i < d; ++i) {
        for (int64_t j = 0; j <= i; ++j) u[j * d + i] = hinv[i * d + j];
      }
    } else {
      identity = true;
      metrics->fallbacks->Increment();
      rec->calib_columns = 0;
    }
  }

  std::vector<RowGrid> grids(rows);
  for (int64_t r = 0; r < rows; ++r) {
    grids[r] = GridForRow(&(*w)[r * d], d);
  }

  const Tensor original = *w;
  // Working copy (double): the residual feedback accumulates here so later
  // columns round the *compensated* weights.
  std::vector<double> work(static_cast<size_t>(rows) * d);
  for (int64_t i = 0; i < rows * d; ++i) work[i] = (*w)[i];

  util::Rng rng(layer_seed);
  const bool stochastic = quantizer == WeightQuantizer::kSpfq;
  std::vector<double> err(rows);
  for (int64_t j = 0; j < d; ++j) {
    const double ujj = identity ? 1.0 : std::max(u[j * d + j], 1e-12);
    for (int64_t r = 0; r < rows; ++r) {
      const RowGrid& g = grids[r];
      const double wv = work[r * d + j];
      if (!std::isfinite(wv)) {
        // Affine NaN policy (affine.cc): NaN quantizes to the clamped
        // zero point (dequantizes to 0), ±Inf clamps to the grid
        // endpoint. Either way the error feedback is skipped — a
        // non-finite residual would poison every remaining column of the
        // row, turning one bad weight into a NaN effective step that
        // silently disables the data-driven variant at admission.
        double q = std::isnan(wv) ? g.zero_point
                                  : (wv > 0.0 ? 127.0 : -128.0);
        q = std::min(127.0, std::max(-128.0, q));
        (*w)[r * d + j] = static_cast<float>(g.scale * (q - g.zero_point));
        err[r] = 0.0;
        continue;
      }
      const double z = wv / g.scale + g.zero_point;
      double q = stochastic ? std::floor(z + rng.UniformDouble())
                            : std::nearbyint(z);
      q = std::min(127.0, std::max(-128.0, q));
      const double wq = g.scale * (q - g.zero_point);
      (*w)[r * d + j] = static_cast<float>(wq);
      err[r] = (wv - wq) / ujj;
    }
    if (identity || j + 1 == d) continue;
    const double* urow = &u[j * d];
    for (int64_t r = 0; r < rows; ++r) {
      const double e = err[r];
      if (e == 0.0) continue;
      double* wrow = &work[r * d];
      for (int64_t k = j + 1; k < d; ++k) wrow[k] -= e * urow[k];
    }
  }

  // Measured perturbation statistics against the *original* weights.
  // Non-finite originals are excluded: their quantized value is pinned by
  // the NaN policy above, and a NaN delta would otherwise ride through
  // rms_delta into a NaN effective step (and a never-admitting bound).
  double sum_sq = 0.0, max_abs = 0.0;
  for (int64_t i = 0; i < rows * d; ++i) {
    const double delta =
        static_cast<double>((*w)[i]) - static_cast<double>(original[i]);
    if (!std::isfinite(delta)) continue;
    sum_sq += delta * delta;
    max_abs = std::max(max_abs, std::fabs(delta));
  }
  rec->max_abs_delta = max_abs;
  rec->rms_delta = std::sqrt(sum_sq / static_cast<double>(rows * d));
  // Fallback effective step: the uniform step whose grid noise matches
  // the raw weight perturbation (RMS(delta) = q / sqrt(12)).
  rec->effective_step = std::sqrt(12.0) * rec->rms_delta;

  // Measured calibration-output error: sum_r delta_r H delta_r^T over the
  // raw (undamped) Gram, normalized per output scalar. The data-driven
  // effective step is the q whose independent-rounding CLT prediction
  // q/sqrt(12) * sqrt(sum_i E[x_i^2]) reproduces this measurement — the
  // error-feedback cancellation lands as a smaller step than range/255.
  if (gram != nullptr && gram->columns > 0 && rec->calib_columns > 0) {
    double total = 0.0;
    std::vector<double> delta(d);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t k = 0; k < d; ++k) {
        delta[k] = static_cast<double>((*w)[r * d + k]) -
                   static_cast<double>(original[r * d + k]);
        // Same exclusion as the RMS statistics above.
        if (!std::isfinite(delta[k])) delta[k] = 0.0;
      }
      for (int64_t i = 0; i < d; ++i) {
        if (delta[i] == 0.0) continue;
        const double* hrow = &gram->h[i * d];
        double dot = 0.0;
        for (int64_t k = 0; k < d; ++k) dot += hrow[k] * delta[k];
        total += delta[i] * dot;
      }
    }
    total = std::max(total, 0.0);
    rec->calib_rms_error = std::sqrt(
        total / (static_cast<double>(gram->columns) *
                 static_cast<double>(rows)));
    double trace = 0.0;
    for (int64_t i = 0; i < d; ++i) trace += gram->h[i * d + i];
    // sum_i E[x_i^2] over the calibration feature vectors.
    const double input_sq = trace / static_cast<double>(gram->columns);
    if (input_sq > 0.0 && std::isfinite(input_sq)) {
      rec->effective_step =
          std::sqrt(12.0) * rec->calib_rms_error / std::sqrt(input_sq);
    }
  }
  if (rec->table_step > 0.0) {
    metrics->step_ratio->Record(rec->effective_step / rec->table_step);
  }
}

}  // namespace

OptqQuantizedModel OptqQuantizeWeights(const nn::Model& model,
                                       const tensor::Tensor& calibration,
                                       WeightQuantizer quantizer,
                                       const OptqConfig& config) {
  EF_CHECK(quantizer == WeightQuantizer::kOptq ||
           quantizer == WeightQuantizer::kSpfq);
  OptqQuantizedModel out;
  out.model = model.Clone();
  out.model.set_name(model.name() + ".int8+" + QuantizerToString(quantizer));
  out.quantizer = quantizer;
  out.model.FoldPsn();

  // Single calibration forward pass with the Gram collector installed.
  // The observer is thread-local, so only *this thread's* Forward calls
  // feed the collector: serving Forwards running concurrently on other
  // threads — or a second materialization racing on another worker —
  // never touch it, and the scoped install/restore below cannot interact
  // with theirs.
  GramCollector collector(config.max_gram_columns);
  if (calibration.size() > 0) {
    nn::CalibrationObserver* prev = nn::SetCalibrationObserver(&collector);
    Tensor scratch;
    out.model.Forward(calibration, &scratch, /*training=*/false);
    nn::SetCalibrationObserver(prev);
  }

  uint64_t layer_index = 0;
  out.model.VisitLayers([&](nn::Layer* layer) {
    Tensor* w = nullptr;
    std::string name;
    if (auto* dl = dynamic_cast<nn::DenseLayer*>(layer)) {
      w = &dl->mutable_weight();
      name = dl->ToString();
    } else if (auto* cl = dynamic_cast<nn::Conv2dLayer*>(layer)) {
      w = &cl->mutable_weight();
      name = cl->ToString();
    } else {
      return;
    }
    OptqLayerRecord rec;
    // Seed derived from the fixed config seed and the traversal index so
    // SPFQ materializations are reproducible layer by layer.
    const uint64_t layer_seed =
        config.seed + 0x9e3779b97f4a7c15ull * (layer_index + 1);
    QuantizeLayer(name, w, collector.Find(layer), quantizer, config,
                  layer_seed, &rec);
    out.layers.push_back(std::move(rec));
    ++layer_index;
  });
  return out;
}

std::vector<double> OptqEffectiveSteps(const OptqQuantizedModel& q) {
  std::vector<double> steps;
  steps.reserve(q.layers.size());
  for (const OptqLayerRecord& rec : q.layers) {
    steps.push_back(rec.effective_step);
  }
  return steps;
}

}  // namespace quant
}  // namespace errorflow
