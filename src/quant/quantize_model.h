#ifndef ERRORFLOW_QUANT_QUANTIZE_MODEL_H_
#define ERRORFLOW_QUANT_QUANTIZE_MODEL_H_

#include <string>
#include <vector>

#include "nn/model.h"
#include "quant/format.h"

namespace errorflow {
namespace quant {

/// \brief Per-layer record of a weight-only post-training quantization.
struct LayerQuantRecord {
  std::string layer;
  NumericFormat format = NumericFormat::kFP32;
  /// Table-I average step size of the layer's weight tensor.
  double step_size = 0.0;
  /// Largest per-element weight perturbation introduced.
  double max_abs_delta = 0.0;
};

/// \brief Result of quantizing a model: the quantized clone plus the
/// per-layer report used by the error-flow analysis and benchmarks.
struct QuantizedModel {
  nn::Model model;
  NumericFormat format = NumericFormat::kFP32;
  std::vector<LayerQuantRecord> layers;
};

/// \brief Weight-only post-training quantization (Sec. III-A).
///
/// Deep-copies `model` and rounds every Dense/Conv weight tensor (biases are
/// kept in FP32, as is standard; bias error is zero under weight-only
/// quantization) to `format`: bit-exact mantissa rounding for TF32/FP16/
/// BF16, per-tensor affine with max calibration for INT8. PSN must already
/// be folded (the function folds it defensively).
QuantizedModel QuantizeWeights(const nn::Model& model, NumericFormat format);

/// \brief Logical storage footprint of a model's parameters at `format`:
/// parameter count times StorageBits / 8. With kFP32 this equals the
/// resident in-memory size of a (de)quantized clone, since reduced-precision
/// values are stored as representable FP32 subsets; reduced formats give the
/// bandwidth-model size the paper's I/O discussion uses.
int64_t ModelStorageBytes(const nn::Model& model, NumericFormat format);

}  // namespace quant
}  // namespace errorflow

#endif  // ERRORFLOW_QUANT_QUANTIZE_MODEL_H_
