#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "util/bytes.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

constexpr char kMagic[4] = {'E', 'F', 'M', '1'};

enum LayerTag : uint8_t {
  kTagDense = 1,
  kTagConv2d = 2,
  kTagActivation = 3,
  kTagResidual = 4,
  kTagAvgPool = 5,
  kTagGlobalAvgPool = 6,
  kTagFlatten = 7,
};

class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF32(float v) { PutRaw(&v, sizeof(v)); }
  void PutString(const std::string& s) {
    PutI64(static_cast<int64_t>(s.size()));
    buf_.append(s);
  }
  void PutTensor(const Tensor& t) {
    PutI64(t.ndim());
    for (int64_t d : t.shape()) PutI64(d);
    PutRaw(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  }
  std::string Finish() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Bounds-check helper used by the Reader accessors. Compares against the
// bytes *remaining* rather than `pos_ + n`, which would wrap for untrusted
// lengths near UINT64_MAX and pass the check.
#define EF_RETURN_NEED(n)                                                   \
  do {                                                                      \
    if ((n) > buf_.size() - pos_)                                           \
      return ::errorflow::Status::Corruption("model buffer truncated");     \
  } while (0)

class Reader {
 public:
  explicit Reader(const std::string& buf) : buf_(buf) {}

  Result<uint8_t> GetU8() {
    EF_RETURN_NEED(1);
    return static_cast<uint8_t>(buf_[pos_++]);
  }
  Result<int64_t> GetI64() {
    EF_RETURN_NEED(sizeof(int64_t));
    int64_t v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  Result<float> GetF32() {
    EF_RETURN_NEED(sizeof(float));
    float v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  Result<std::string> GetString() {
    EF_ASSIGN_OR_RETURN(int64_t n, GetI64());
    // The unsigned reinterpretation rejects negative lengths and lengths
    // beyond the buffer in one comparison — no wrap-prone pos_ + n.
    EF_RETURN_NEED(static_cast<uint64_t>(n));
    std::string s(buf_.data() + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }
  Result<Tensor> GetTensor() {
    EF_ASSIGN_OR_RETURN(int64_t ndim, GetI64());
    if (ndim < 0 || ndim > 8) return Status::Corruption("bad tensor rank");
    const util::DecodeLimits& limits = util::DecodeLimits::Default();
    tensor::Shape shape;
    // Per-dimension checked product: individually in-range dims can still
    // overflow 64 bits when multiplied (e.g. [2^28, 2^28, 256] wraps to 0),
    // which would silently size the buffer read below.
    uint64_t n = 1;
    for (int64_t i = 0; i < ndim; ++i) {
      EF_ASSIGN_OR_RETURN(int64_t d, GetI64());
      if (d < 0 || d > (1 << 28)) {
        return Status::Corruption("tensor dimension out of range");
      }
      if (!util::CheckedMul(n, static_cast<uint64_t>(d), &n) ||
          n > limits.max_elements) {
        return Status::Corruption("tensor element count overflow");
      }
      shape.push_back(d);
    }
    uint64_t byte_count = 0;
    if (!util::CheckedMul(n, sizeof(float), &byte_count)) {
      return Status::Corruption("tensor byte count overflow");
    }
    EF_RETURN_IF_ERROR(limits.CheckAlloc(byte_count, "tensor payload"));
    EF_RETURN_NEED(byte_count);
    std::vector<float> values(static_cast<size_t>(n));
    std::memcpy(values.data(), buf_.data() + pos_,
                values.size() * sizeof(float));
    pos_ += values.size() * sizeof(float);
    return Tensor(std::move(shape), std::move(values));
  }

 private:
  const std::string& buf_;
  size_t pos_ = 0;
};

void WriteLayer(const Layer* layer, Writer* w);

void WriteLayerList(const std::vector<std::unique_ptr<Layer>>& layers,
                    Writer* w) {
  w->PutI64(static_cast<int64_t>(layers.size()));
  for (const auto& l : layers) WriteLayer(l.get(), w);
}

void WriteLayer(const Layer* layer, Writer* w) {
  switch (layer->kind()) {
    case LayerKind::kDense: {
      const auto* d = static_cast<const DenseLayer*>(layer);
      w->PutU8(kTagDense);
      w->PutI64(d->in_features());
      w->PutI64(d->out_features());
      w->PutU8(d->use_psn() ? 1 : 0);
      w->PutF32(d->alpha());
      w->PutTensor(d->weight());
      w->PutTensor(d->bias());
      return;
    }
    case LayerKind::kConv2d: {
      const auto* c = static_cast<const Conv2dLayer*>(layer);
      w->PutU8(kTagConv2d);
      w->PutI64(c->in_channels());
      w->PutI64(c->out_channels());
      w->PutI64(c->kernel());
      w->PutI64(c->stride());
      w->PutI64(c->padding());
      w->PutU8(c->use_psn() ? 1 : 0);
      w->PutF32(c->alpha());
      w->PutTensor(c->weight());
      w->PutTensor(c->bias());
      return;
    }
    case LayerKind::kActivation: {
      const auto* a = static_cast<const ActivationLayer*>(layer);
      w->PutU8(kTagActivation);
      w->PutU8(static_cast<uint8_t>(a->activation_kind()));
      w->PutF32(a->slope());
      return;
    }
    case LayerKind::kResidualBlock: {
      const auto* b = static_cast<const ResidualBlock*>(layer);
      w->PutU8(kTagResidual);
      WriteLayerList(b->body(), w);
      w->PutU8(b->shortcut() != nullptr ? 1 : 0);
      if (b->shortcut() != nullptr) WriteLayer(b->shortcut(), w);
      const auto* post =
          dynamic_cast<const ActivationLayer*>(b->post_activation());
      w->PutU8(post != nullptr ? 1 : 0);
      w->PutU8(static_cast<uint8_t>(
          post != nullptr ? post->activation_kind() : ActivationKind::kReLU));
      return;
    }
    case LayerKind::kAvgPool2d: {
      const auto* p = static_cast<const AvgPool2dLayer*>(layer);
      w->PutU8(kTagAvgPool);
      w->PutI64(p->window());
      return;
    }
    case LayerKind::kGlobalAvgPool:
      w->PutU8(kTagGlobalAvgPool);
      return;
    case LayerKind::kFlatten:
      w->PutU8(kTagFlatten);
      return;
  }
  EF_CHECK(false);
}

Result<std::unique_ptr<Layer>> ReadLayer(Reader* r);

Result<std::vector<std::unique_ptr<Layer>>> ReadLayerList(Reader* r) {
  EF_ASSIGN_OR_RETURN(int64_t count, r->GetI64());
  if (count < 0 || count > 100000) {
    return Status::Corruption("bad layer count");
  }
  std::vector<std::unique_ptr<Layer>> layers;
  for (int64_t i = 0; i < count; ++i) {
    EF_ASSIGN_OR_RETURN(auto l, ReadLayer(r));
    layers.push_back(std::move(l));
  }
  return layers;
}

// Upper bound on any single layer dimension read from a (possibly
// corrupted) buffer — prevents attacker/bitflip-controlled allocations.
constexpr int64_t kMaxLayerDim = 1 << 24;

Result<std::unique_ptr<Layer>> ReadLayer(Reader* r) {
  EF_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (tag) {
    case kTagDense: {
      EF_ASSIGN_OR_RETURN(int64_t in, r->GetI64());
      EF_ASSIGN_OR_RETURN(int64_t out, r->GetI64());
      if (in <= 0 || out <= 0 || in > kMaxLayerDim || out > kMaxLayerDim) {
        return Status::Corruption("dense dims out of range");
      }
      EF_ASSIGN_OR_RETURN(uint8_t psn, r->GetU8());
      EF_ASSIGN_OR_RETURN(float alpha, r->GetF32());
      EF_ASSIGN_OR_RETURN(Tensor weight, r->GetTensor());
      EF_ASSIGN_OR_RETURN(Tensor bias, r->GetTensor());
      auto d = std::make_unique<DenseLayer>(in, out, psn != 0);
      if (weight.shape() != tensor::Shape{out, in} ||
          bias.shape() != tensor::Shape{out}) {
        return Status::Corruption("dense weight shape mismatch");
      }
      d->mutable_weight() = std::move(weight);
      d->mutable_bias() = std::move(bias);
      d->set_alpha(alpha);
      return std::unique_ptr<Layer>(std::move(d));
    }
    case kTagConv2d: {
      EF_ASSIGN_OR_RETURN(int64_t in, r->GetI64());
      EF_ASSIGN_OR_RETURN(int64_t out, r->GetI64());
      EF_ASSIGN_OR_RETURN(int64_t k, r->GetI64());
      EF_ASSIGN_OR_RETURN(int64_t s, r->GetI64());
      EF_ASSIGN_OR_RETURN(int64_t p, r->GetI64());
      if (in <= 0 || out <= 0 || in > kMaxLayerDim || out > kMaxLayerDim ||
          k <= 0 || k > 1024 || s <= 0 || s > 1024 || p < 0 || p > 1024) {
        return Status::Corruption("conv params out of range");
      }
      EF_ASSIGN_OR_RETURN(uint8_t psn, r->GetU8());
      EF_ASSIGN_OR_RETURN(float alpha, r->GetF32());
      EF_ASSIGN_OR_RETURN(Tensor weight, r->GetTensor());
      EF_ASSIGN_OR_RETURN(Tensor bias, r->GetTensor());
      auto c = std::make_unique<Conv2dLayer>(in, out, static_cast<int>(k),
                                             static_cast<int>(s),
                                             static_cast<int>(p), psn != 0);
      if (weight.shape() != tensor::Shape{out, in * k * k} ||
          bias.shape() != tensor::Shape{out}) {
        return Status::Corruption("conv weight shape mismatch");
      }
      c->mutable_weight() = std::move(weight);
      c->mutable_bias() = std::move(bias);
      c->set_alpha(alpha);
      return std::unique_ptr<Layer>(std::move(c));
    }
    case kTagActivation: {
      EF_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
      EF_ASSIGN_OR_RETURN(float slope, r->GetF32());
      return std::unique_ptr<Layer>(std::make_unique<ActivationLayer>(
          static_cast<ActivationKind>(kind), slope));
    }
    case kTagResidual: {
      EF_ASSIGN_OR_RETURN(auto body, ReadLayerList(r));
      EF_ASSIGN_OR_RETURN(uint8_t has_shortcut, r->GetU8());
      std::unique_ptr<Layer> shortcut;
      if (has_shortcut != 0) {
        EF_ASSIGN_OR_RETURN(shortcut, ReadLayer(r));
      }
      EF_ASSIGN_OR_RETURN(uint8_t has_post, r->GetU8());
      std::unique_ptr<Layer> post;
      EF_ASSIGN_OR_RETURN(uint8_t post_kind, r->GetU8());
      if (has_post != 0) {
        post = std::make_unique<ActivationLayer>(
            static_cast<ActivationKind>(post_kind));
      }
      return std::unique_ptr<Layer>(std::make_unique<ResidualBlock>(
          std::move(body), std::move(shortcut), std::move(post)));
    }
    case kTagAvgPool: {
      EF_ASSIGN_OR_RETURN(int64_t window, r->GetI64());
      if (window < 1 || window > 1024) {
        return Status::Corruption("pool window out of range");
      }
      return std::unique_ptr<Layer>(
          std::make_unique<AvgPool2dLayer>(static_cast<int>(window)));
    }
    case kTagGlobalAvgPool:
      return std::unique_ptr<Layer>(std::make_unique<GlobalAvgPoolLayer>());
    case kTagFlatten:
      return std::unique_ptr<Layer>(std::make_unique<FlattenLayer>());
    default:
      return Status::Corruption(
          util::StrFormat("unknown layer tag %d", tag));
  }
}

}  // namespace

std::string SerializeModel(const Model& model) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(kMagic[0]));
  w.PutU8(static_cast<uint8_t>(kMagic[1]));
  w.PutU8(static_cast<uint8_t>(kMagic[2]));
  w.PutU8(static_cast<uint8_t>(kMagic[3]));
  w.PutString(model.name());
  WriteLayerList(model.layers(), &w);
  return w.Finish();
}

Result<Model> DeserializeModel(const std::string& buffer) {
  if (buffer.size() < 4 || std::memcmp(buffer.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad model magic");
  }
  Reader r(buffer);
  for (int i = 0; i < 4; ++i) {
    EF_ASSIGN_OR_RETURN(uint8_t byte, r.GetU8());
    (void)byte;
  }
  EF_ASSIGN_OR_RETURN(std::string name, r.GetString());
  EF_ASSIGN_OR_RETURN(auto layers, ReadLayerList(&r));
  Model model(name);
  for (auto& l : layers) model.Add(std::move(l));
  return model;
}

Status SaveModel(const Model& model, const std::string& path) {
  const std::string buf = SerializeModel(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return Status::IOError("cannot open for write: " + path);
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.close();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Model> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::IOError("cannot open for read: " + path);
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return DeserializeModel(buf);
}

}  // namespace nn
}  // namespace errorflow
