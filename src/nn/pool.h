#ifndef ERRORFLOW_NN_POOL_H_
#define ERRORFLOW_NN_POOL_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace errorflow {
namespace nn {

/// \brief Non-overlapping average pooling over square windows (NCHW).
///
/// Averaging is a linear contraction (operator norm <= 1), so it never
/// amplifies propagated error — the error-flow profiler treats it as a
/// gain-1 pass-through, which is conservative.
class AvgPool2dLayer : public Layer {
 public:
  explicit AvgPool2dLayer(int window);

  LayerKind kind() const override { return LayerKind::kAvgPool2d; }
  std::string ToString() const override;
  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

  int window() const { return window_; }

 private:
  int window_;
  Shape cached_input_shape_;
};

/// \brief Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPoolLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kGlobalAvgPool; }
  std::string ToString() const override { return "GlobalAvgPool"; }
  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  Shape cached_input_shape_;
};

/// \brief Flattens (N, C, H, W) (or any rank >= 2) to (N, features).
class FlattenLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string ToString() const override { return "Flatten"; }
  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

 private:
  Shape cached_input_shape_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_POOL_H_
