#ifndef ERRORFLOW_NN_CONV2D_H_
#define ERRORFLOW_NN_CONV2D_H_

#include <memory>
#include <mutex>
#include <string>

#include "nn/layer.h"
#include "nn/spectral.h"

namespace errorflow {
namespace nn {

/// \brief 2-D convolution layer (NCHW, square kernel, zero padding), built
/// on batched im2col + GEMM, with full backprop and optional PSN.
///
/// Execution is batch-level (docs/PERFORMANCE.md): the whole batch is
/// gathered into one channel-major (C*K*K, N*OH*OW) column matrix
/// (sample-parallel, with contiguous per-row copies — for stride 1 each
/// kernel-tap row fills by OW-wide memcpy), multiplied by the kernel
/// matrix in a single large Gemm that crosses the kernel-threading
/// threshold and whose rows are already channel-major, then laid out NCHW
/// through contiguous per-plane bias-add copies (no transpose anywhere).
/// Backward mirrors this: one batched GemmNT for the weight gradient and
/// one batched GemmTN + sample-parallel col2im scatter for the input
/// gradient. Steady-state
/// forward/backward performs no heap allocations: inference uses
/// thread-local grow-only scratch (so concurrent Forward calls on one
/// folded layer stay lock-free), and training caches the column matrix in
/// the layer for reuse by Backward. Threaded results are bit-identical to
/// serial runs (chunks write disjoint ranges; per-row GEMM reductions are
/// order-independent of the partition).
///
/// Under PSN the kernel is normalized by the *true operator norm* of the
/// convolution (power iteration over the actual conv / conv-transpose maps
/// at the spatial size seen in training, warm-started across steps), so
/// the layer's operator norm equals the learnable alpha — which is what
/// the error-flow bound consumes. The backward pass treats the norm as a
/// constant scale (the rank-1 Miyato correction is omitted for conv; the
/// dense layer keeps the exact correction).
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int kernel,
              int stride = 1, int padding = 0, bool use_psn = false);

  LayerKind kind() const override { return LayerKind::kConv2d; }
  std::string ToString() const override;

  /// He-uniform init for the kernel; zero bias; PSN alpha set to the initial
  /// matrix spectral norm so normalization starts as a no-op.
  void InitHe(uint64_t seed);

  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::vector<Param> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int stride() const { return stride_; }
  int padding() const { return padding_; }
  bool use_psn() const { return use_psn_; }
  float alpha() const { return alpha_[0]; }
  void set_alpha(float a) { alpha_[0] = a; }

  /// Kernel as a matrix, shape (out_ch, in_ch * k * k).
  const Tensor& weight() const { return weight_; }
  Tensor& mutable_weight() { return weight_; }
  const Tensor& bias() const { return bias_; }
  Tensor& mutable_bias() { return bias_; }

  /// Effective (PSN-normalized) kernel matrix used in the forward pass.
  /// Without PSN this is a zero-copy reference to weight(); under PSN it
  /// references an internal cache overwritten by the next call, so on an
  /// unfolded layer it is single-threaded API — concurrent paths (Forward,
  /// the norm accessors, FoldPsn) snapshot internally under the layer
  /// mutex instead of reading this reference.
  const Tensor& EffectiveWeight() const;

  /// Bakes PSN into the stored kernel and disables it. Idempotent.
  void FoldPsn();

  /// Matrix spectral norm of the effective reshaped kernel.
  double MatrixSpectralNorm() const;

  /// True operator norm of this convolution acting on single-sample inputs
  /// of spatial size (h, w), via power iteration on conv / conv-transpose.
  double OperatorNorm(int64_t h, int64_t w) const;

 private:
  // Caller holds spec_mu_.
  void RefreshSigmaLocked(int iters) const;
  // Refreshes the operator-norm estimate at spatial size (h, w) with
  // warm-started power iteration on the raw kernel. Caller holds spec_mu_.
  void RefreshOpSigmaLocked(int64_t h, int64_t w, int iters) const;
  // Thread-safe snapshot of the PSN-normalized kernel matrix: refreshes the
  // operator norm (at the given spatial size, or the last-seen / default
  // size when h == 0) and returns (alpha/sigma) * W as a fresh tensor.
  Tensor PsnSnapshot(int64_t h, int64_t w, int iters) const;

  // Applies the convolution to one rank-3 (C,H,W) sample (flattened 1-D in
  // and out) with the effective weight; used by OperatorNorm.
  void ApplySingle(const Tensor& weight_mat, const Tensor& in_flat,
                   int64_t h, int64_t w, Tensor* out_flat) const;
  void ApplySingleTranspose(const Tensor& weight_mat, const Tensor& in_flat,
                            int64_t h, int64_t w, Tensor* out_flat) const;

  int64_t in_channels_;
  int64_t out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  bool use_psn_;

  Tensor weight_;  // (out_ch, in_ch * k * k)
  Tensor bias_;    // (out_ch)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor alpha_;
  Tensor alpha_grad_;

  // spec_mu_ guards every mutable cache below so concurrent Forward /
  // norm queries on a shared layer instance are safe.
  mutable std::mutex spec_mu_;
  mutable SpectralEstimate spec_;
  mutable bool spec_valid_ = false;
  // PSN-normalized kernel returned by reference from EffectiveWeight().
  mutable Tensor eff_cache_;

  // Operator-norm cache (PSN): estimate, warm-start vector, and the
  // spatial size it was measured at.
  mutable double op_sigma_ = 0.0;
  mutable Tensor op_v_;
  mutable int64_t op_h_ = 0, op_w_ = 0;

  Tensor cached_input_;
  Tensor cached_eff_weight_;
  // Batched channel-major (C*K*K, N*OH*OW) column matrix saved by a
  // training Forward so Backward skips the im2col regather. Reused across
  // steps (reallocated only when the batch geometry changes).
  Tensor cached_cols_;

  // Backward-pass scratch (Backward consumes per-layer cached state, so it
  // is single-threaded per layer by contract; members are safe and keep
  // steady-state training allocation-free).
  Tensor bwd_gmat_;      // (out_ch, N*OH*OW) channel-major grad_output
  Tensor bwd_gcols_;     // (C*K*K, N*OH*OW) input-gradient columns
  Tensor bwd_grad_eff_;  // (out_ch, C*K*K) effective-weight gradient
  std::vector<double> bwd_bias_acc_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_CONV2D_H_
