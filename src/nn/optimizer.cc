#include "nn/optimizer.h"

#include <cmath>

namespace errorflow {
namespace nn {

SgdOptimizer::SgdOptimizer(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void SgdOptimizer::Step(const std::vector<Param>& params) {
  for (const Param& p : params) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    Tensor& vel = velocity_[p.value];
    if (vel.size() != w.size()) vel = Tensor(w.shape());
    const float lr = static_cast<float>(lr_);
    const float mu = static_cast<float>(momentum_);
    const float wd =
        p.decay ? static_cast<float>(weight_decay_) : 0.0f;
    for (int64_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + wd * w[i];
      vel[i] = mu * vel[i] + grad;
      w[i] -= lr * vel[i];
    }
  }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1, double beta2,
                             double eps, double weight_decay)
    : Optimizer(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void AdamOptimizer::Step(const std::vector<Param>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (const Param& p : params) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    Tensor& m = m_[p.value];
    Tensor& v = v_[p.value];
    if (m.size() != w.size()) m = Tensor(w.shape());
    if (v.size() != w.size()) v = Tensor(w.shape());
    const double wd = p.decay ? weight_decay_ : 0.0;
    for (int64_t i = 0; i < w.size(); ++i) {
      const double grad = static_cast<double>(g[i]) + wd * w[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * grad);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * grad * grad);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace nn
}  // namespace errorflow
