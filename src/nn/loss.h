#ifndef ERRORFLOW_NN_LOSS_H_
#define ERRORFLOW_NN_LOSS_H_

#include <memory>

#include "tensor/tensor.h"

namespace errorflow {
namespace nn {

using tensor::Tensor;

/// \brief Training loss: value plus gradient w.r.t. the prediction.
class Loss {
 public:
  virtual ~Loss() = default;

  /// Computes the scalar loss for a batch and, when `grad` is non-null, the
  /// gradient w.r.t. `pred` (same shape as `pred`).
  virtual double Compute(const Tensor& pred, const Tensor& target,
                         Tensor* grad) const = 0;
};

/// \brief Mean squared error over all elements of the batch. The regression
/// loss used for the combustion surrogates.
class MseLoss : public Loss {
 public:
  double Compute(const Tensor& pred, const Tensor& target,
                 Tensor* grad) const override;
};

/// \brief Softmax cross-entropy for classification.
///
/// `target` is a rank-1 tensor of class indices (length batch). Used for
/// the EuroSAT-style task.
class SoftmaxCrossEntropyLoss : public Loss {
 public:
  double Compute(const Tensor& pred, const Tensor& target,
                 Tensor* grad) const override;

  /// Fraction of rows whose argmax matches the target index.
  static double Accuracy(const Tensor& pred, const Tensor& target);
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_LOSS_H_
