#include "nn/dense.h"

#include <cmath>

#include "nn/calibration.h"
#include "tensor/norms.h"
#include "tensor/ops.h"
#include "util/random.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

DenseLayer::DenseLayer(int64_t in_features, int64_t out_features,
                       bool use_psn)
    : in_features_(in_features),
      out_features_(out_features),
      use_psn_(use_psn),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}),
      alpha_({1}, {1.0f}),
      alpha_grad_({1}, {0.0f}) {}

std::string DenseLayer::ToString() const {
  return util::StrFormat("Dense(%lld -> %lld%s)",
                         static_cast<long long>(in_features_),
                         static_cast<long long>(out_features_),
                         use_psn_ ? ", psn" : "");
}

void DenseLayer::InitXavier(uint64_t seed) {
  util::Rng rng(seed);
  const float limit = std::sqrt(
      6.0f / static_cast<float>(in_features_ + out_features_));
  for (int64_t i = 0; i < weight_.size(); ++i) {
    weight_[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
  if (use_psn_) {
    RefreshSigmaLocked(200);
    alpha_[0] = static_cast<float>(spec_.sigma);  // Initially a no-op.
  }
}

void DenseLayer::RefreshSigmaLocked(int iters) const {
  const Tensor* warm = spec_valid_ ? &spec_.v : nullptr;
  spec_ = PowerIteration(weight_, iters, 1e-10, /*seed=*/7, warm);
  spec_valid_ = true;
}

Tensor DenseLayer::PsnSnapshot(int refresh_iters_warm,
                               int refresh_iters_cold) const {
  std::lock_guard<std::mutex> lock(spec_mu_);
  RefreshSigmaLocked(spec_valid_ ? refresh_iters_warm : refresh_iters_cold);
  Tensor eff = weight_;
  const double sigma = std::max(spec_.sigma, 1e-20);
  tensor::Scale(&eff, static_cast<float>(alpha_[0] / sigma));
  return eff;
}

const Tensor& DenseLayer::EffectiveWeight() const {
  if (!use_psn_) return weight_;
  Tensor eff = PsnSnapshot(/*refresh_iters_warm=*/4,
                           /*refresh_iters_cold=*/200);
  std::lock_guard<std::mutex> lock(spec_mu_);
  eff_cache_ = std::move(eff);
  return eff_cache_;
}

void DenseLayer::FoldPsn() {
  if (!use_psn_) return;
  weight_ = PsnSnapshot(/*refresh_iters_warm=*/4, /*refresh_iters_cold=*/200);
  use_psn_ = false;
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
}

double DenseLayer::SpectralNorm() const {
  if (use_psn_) return alpha_[0];
  std::lock_guard<std::mutex> lock(spec_mu_);
  RefreshSigmaLocked(spec_valid_ ? 8 : 300);
  return spec_.sigma;
}

void DenseLayer::Forward(const Tensor& input, Tensor* output,
                         bool training) {
  EF_CHECK(input.ndim() == 2 && input.dim(1) == in_features_);
  if (CalibrationObserver* obs = GetCalibrationObserver()) {
    obs->OnLinearInput(this, input.data(), in_features_, input.dim(0),
                       /*features_are_rows=*/false);
  }
  if (!use_psn_) {
    // Hot path: the stored weight is the effective weight; no copy, no
    // shared-state mutation, safe under concurrent execution.
    tensor::GemmNT(input, weight_, output);
    tensor::AddRowBias(output, bias_);
    if (training) cached_input_ = input;
    return;
  }
  Tensor eff = PsnSnapshot(/*refresh_iters_warm=*/4,
                           /*refresh_iters_cold=*/200);
  tensor::GemmNT(input, eff, output);
  tensor::AddRowBias(output, bias_);
  if (training) {
    cached_input_ = input;
    cached_eff_weight_ = std::move(eff);
  }
}

void DenseLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  const Tensor& x = cached_input_;
  EF_CHECK(grad_output.ndim() == 2 && grad_output.dim(1) == out_features_ &&
           x.dim(0) == grad_output.dim(0));

  // Gradient w.r.t. the *effective* weight: G_eff = grad_out^T * x.
  Tensor grad_eff({out_features_, in_features_});
  tensor::GemmTN(grad_output, x, &grad_eff);

  // Bias gradient: column sums of grad_output.
  const int64_t batch = grad_output.dim(0);
  for (int64_t i = 0; i < batch; ++i) {
    for (int64_t j = 0; j < out_features_; ++j) {
      bias_grad_[j] += grad_output.at(i, j);
    }
  }

  if (!use_psn_) {
    tensor::Add(weight_grad_, grad_eff, &weight_grad_);
  } else {
    std::lock_guard<std::mutex> lock(spec_mu_);
    // W_eff = (alpha / sigma) * W with sigma = u^T W v (power iteration).
    // Following Miyato et al., treat u, v as constants:
    //   dL/dalpha = <G_eff, W/sigma>
    //   dL/dW     = (alpha/sigma) * (G_eff - <G_eff, W/sigma> * u v^T / alpha
    //                * alpha)  -- i.e. G_eff minus its component along uv^T
    // Concretely with What = W / sigma:
    //   dL/dW = (alpha/sigma) * (G_eff - <G_eff, What> u v^T)
    const double sigma = std::max(spec_.sigma, 1e-20);
    const float a = alpha_[0];
    double inner = 0.0;  // <G_eff, W/sigma>
    for (int64_t i = 0; i < grad_eff.size(); ++i) {
      inner += static_cast<double>(grad_eff[i]) *
               (static_cast<double>(weight_[i]) / sigma);
    }
    alpha_grad_[0] += static_cast<float>(inner);
    const float scale = static_cast<float>(a / sigma);
    const float corr = static_cast<float>(inner);
    for (int64_t r = 0; r < out_features_; ++r) {
      for (int64_t c = 0; c < in_features_; ++c) {
        const float rank1 = spec_.u[r] * spec_.v[c];
        weight_grad_.at(r, c) +=
            scale * (grad_eff.at(r, c) - corr * rank1);
      }
    }
    spec_valid_ = true;  // Warm start next refresh; weights moved a little.
  }

  // Gradient w.r.t. input: grad_in = grad_out * W_eff. Without PSN the
  // effective weight is the stored weight (not separately cached).
  tensor::Gemm(grad_output, use_psn_ ? cached_eff_weight_ : weight_,
               grad_input);
}

std::vector<Param> DenseLayer::Params() {
  std::vector<Param> params = {
      Param{"weight", &weight_, &weight_grad_, /*decay=*/true},
      Param{"bias", &bias_, &bias_grad_, /*decay=*/false},
  };
  if (use_psn_) {
    params.push_back(Param{"alpha", &alpha_, &alpha_grad_, /*decay=*/false});
  }
  return params;
}

std::unique_ptr<Layer> DenseLayer::Clone() const {
  auto copy =
      std::make_unique<DenseLayer>(in_features_, out_features_, use_psn_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->alpha_ = alpha_;
  return copy;
}

Shape DenseLayer::OutputShape(const Shape& input_shape) const {
  EF_CHECK(input_shape.size() == 2);
  return {input_shape[0], out_features_};
}

}  // namespace nn
}  // namespace errorflow
