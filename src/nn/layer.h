#ifndef ERRORFLOW_NN_LAYER_H_
#define ERRORFLOW_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace errorflow {
namespace nn {

using tensor::Shape;
using tensor::Tensor;

/// \brief A trainable parameter: value and accumulated gradient, both owned
/// by the layer. Optimizers mutate `value` through this view.
struct Param {
  /// Stable identifier within the layer, e.g. "weight", "bias", "alpha".
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  /// When false the optimizer must not apply L2 weight decay (biases,
  /// PSN scales). Matches standard practice.
  bool decay = true;
};

/// \brief Coarse layer taxonomy used by the model walker (serialization,
/// quantization, and error-flow profiling all dispatch on this).
enum class LayerKind {
  kDense,
  kConv2d,
  kActivation,
  kResidualBlock,
  kGlobalAvgPool,
  kFlatten,
  kAvgPool2d,
};

/// \brief Base class for all network layers.
///
/// Layers own their parameters and any state cached between Forward and
/// Backward. Forward/Backward operate on whole batches: rank-2 tensors
/// (batch, features) for tabular layers, rank-4 (batch, C, H, W) for
/// convolutional layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Layer kind for structural walks.
  virtual LayerKind kind() const = 0;

  /// Human-readable description, e.g. "Dense(9 -> 50)".
  virtual std::string ToString() const = 0;

  /// Computes the layer output. When `training` is true, caches whatever is
  /// needed by the subsequent Backward call.
  virtual void Forward(const Tensor& input, Tensor* output,
                       bool training) = 0;

  /// Given the loss gradient w.r.t. this layer's output, accumulates
  /// parameter gradients and writes the gradient w.r.t. the input.
  /// Must be preceded by Forward(..., training=true) on the same batch.
  virtual void Backward(const Tensor& grad_output, Tensor* grad_input) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> Params() { return {}; }

  /// Zeroes all parameter gradients.
  void ZeroGrads() {
    for (Param& p : Params()) {
      if (p.grad != nullptr) p.grad->Fill(0.0f);
    }
  }

  /// Deep copy (weights included, caches excluded).
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Shape of the output for a given input shape (batch dim excluded from
  /// consideration: pass and receive full shapes including batch).
  virtual Shape OutputShape(const Shape& input_shape) const = 0;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_LAYER_H_
