#ifndef ERRORFLOW_NN_TRAINER_H_
#define ERRORFLOW_NN_TRAINER_H_

#include <vector>

#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace errorflow {
namespace nn {

/// \brief Training hyperparameters.
struct TrainConfig {
  int epochs = 50;
  int64_t batch_size = 64;
  uint64_t seed = 1;
  /// Coefficient of the spectral-norm penalty sum_l sigma_l^2 added to the
  /// loss (Sec. III-C). Under PSN, sigma_l == alpha_l, so the penalty
  /// gradient is 2 * lambda * alpha_l on each PSN scale. Zero disables it.
  double spectral_penalty = 0.0;
  /// Print progress every N epochs; 0 silences output.
  int log_every = 0;
};

/// \brief Per-epoch record returned by Fit.
struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
};

/// \brief Minibatch trainer with deterministic shuffling.
///
/// Handles the PSN-specific bookkeeping: spectral penalty gradients and
/// clamping PReLU slopes to [0, 1] after each step (so the activation
/// derivative bound C = 1 holds, Sec. III-A).
class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// Trains `model` on (inputs, targets) minimizing `loss` with `opt`.
  /// Inputs are rank-2 (samples, features) or rank-4 (samples, C, H, W);
  /// targets rank-2 (samples, outputs) for regression or rank-1 class
  /// indices for classification.
  std::vector<EpochStats> Fit(Model* model, const Tensor& inputs,
                              const Tensor& targets, const Loss& loss,
                              Optimizer* opt);

  /// Mean loss of `model` on a dataset (no gradient).
  static double Evaluate(Model* model, const Tensor& inputs,
                         const Tensor& targets, const Loss& loss);

 private:
  TrainConfig config_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_TRAINER_H_
