#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/calibration.h"
#include "tensor/kernels.h"
#include "tensor/norms.h"
#include "tensor/ops.h"
#include "util/random.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

int64_t OutDim(int64_t in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

// Allocation-free rank-4 shape test (constructing a Shape temporary would
// heap-allocate on every Forward).
bool ShapeIs4(const Tensor& t, int64_t d0, int64_t d1, int64_t d2,
              int64_t d3) {
  return t.ndim() == 4 && t.dim(0) == d0 && t.dim(1) == d1 &&
         t.dim(2) == d2 && t.dim(3) == d3;
}

bool ShapeIs2(const Tensor& t, int64_t d0, int64_t d1) {
  return t.ndim() == 2 && t.dim(0) == d0 && t.dim(1) == d1;
}

// Thread-local grow-only scratch: the inference path must be lock-free
// across threads sharing one layer AND allocation-free in steady state, so
// each calling thread keeps its own buffers, grown monotonically.
struct ConvScratch {
  std::vector<float> cols;  // channel-major column matrix
  std::vector<float> mat;   // batched GEMM output (channel-major)
};

ConvScratch& LocalScratch() {
  static thread_local ConvScratch scratch;
  return scratch;
}

float* GrowBuffer(std::vector<float>* buf, int64_t n) {
  if (static_cast<int64_t>(buf->size()) < n) buf->resize(static_cast<size_t>(n));
  return buf->data();
}

// Valid output-x range for a kernel column: every ox in [lo, hi) reads an
// in-bounds ix = ox * s + kx - p.
int64_t OxLo(int kx, int s, int p) {
  const int64_t a = p - kx;
  return a <= 0 ? 0 : (a + s - 1) / s;
}

int64_t OxHi(int64_t w, int64_t ow, int kx, int s, int p) {
  const int64_t a = w - 1 + p - kx;
  return a < 0 ? 0 : std::min<int64_t>(ow, a / s + 1);
}

// Gathers one (C,H,W) sample into the channel-major (Caffe-layout) column
// matrix: row r = (ch*K + ky)*K + kx holds that tap's value for every
// output pixel, so for stride 1 each (row, oy) is one contiguous OW-float
// memcpy and border clipping is hoisted out of the pixel loop entirely.
// `cols` points at this sample's first column; rows are `col_stride` apart
// (the batched matrix interleaves samples along the column axis).
void Im2ColSample(const float* in, int64_t c, int64_t h, int64_t w, int k,
                  int s, int p, int64_t oh, int64_t ow, float* cols,
                  int64_t col_stride) {
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* plane = in + ch * h * w;
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx) {
        float* dst = cols + ((ch * k + ky) * k + kx) * col_stride;
        const int64_t ox_lo = OxLo(kx, s, p);
        const int64_t ox_hi = OxHi(w, ow, kx, s, p);
        for (int64_t oy = 0; oy < oh; ++oy, dst += ow) {
          const int64_t iy = oy * s + ky - p;
          if (iy < 0 || iy >= h || ox_hi <= ox_lo) {
            std::memset(dst, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          if (ox_lo > 0) {
            std::memset(dst, 0, static_cast<size_t>(ox_lo) * sizeof(float));
          }
          const float* src = plane + iy * w + kx - p;
          if (s == 1) {
            std::memcpy(dst + ox_lo, src + ox_lo,
                        static_cast<size_t>(ox_hi - ox_lo) * sizeof(float));
          } else {
            for (int64_t ox = ox_lo; ox < ox_hi; ++ox) dst[ox] = src[ox * s];
          }
          if (ox_hi < ow) {
            std::memset(dst + ox_hi, 0,
                        static_cast<size_t>(ow - ox_hi) * sizeof(float));
          }
        }
      }
    }
  }
}

// Scatter-adds one sample's channel-major gradient columns back into its
// (C,H,W) gradient block, mirroring Im2ColSample's clipped runs. `out`
// must be zeroed by the caller.
void Col2ImSample(const float* cols, int64_t col_stride, int64_t c,
                  int64_t h, int64_t w, int k, int s, int p, int64_t oh,
                  int64_t ow, float* out) {
  for (int64_t ch = 0; ch < c; ++ch) {
    float* plane = out + ch * h * w;
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx) {
        const float* src = cols + ((ch * k + ky) * k + kx) * col_stride;
        const int64_t ox_lo = OxLo(kx, s, p);
        const int64_t ox_hi = OxHi(w, ow, kx, s, p);
        if (ox_hi <= ox_lo) continue;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * s + ky - p;
          if (iy < 0 || iy >= h) continue;
          float* __restrict d = plane + iy * w + kx - p;
          const float* __restrict g = src + oy * ow;
          if (s == 1) {
            for (int64_t ox = ox_lo; ox < ox_hi; ++ox) d[ox] += g[ox];
          } else {
            for (int64_t ox = ox_lo; ox < ox_hi; ++ox) d[ox * s] += g[ox];
          }
        }
      }
    }
  }
}

// Batched im2col: samples [0, n) gathered sample-parallel on the shared
// kernel pool into the (C*K*K, N*OH*OW) column matrix. Gated on the FLOP
// count of the GEMM the columns feed — when that GEMM fans out, threading
// its producer is free; below the threshold nothing here is worth a
// dispatch either. Each sample writes a disjoint column block, so threaded
// output is bit-identical to serial.
void Im2ColBatch(const float* in, int64_t n, int64_t c, int64_t h, int64_t w,
                 int k, int s, int p, int64_t oh, int64_t ow,
                 int64_t gemm_flops, float* cols) {
  const int64_t chw = c * h * w;
  const int64_t ohow = oh * ow;
  const int64_t col_stride = n * ohow;
  if (!tensor::KernelWillParallelize(gemm_flops)) {
    for (int64_t img = 0; img < n; ++img) {
      Im2ColSample(in + img * chw, c, h, w, k, s, p, oh, ow,
                   cols + img * ohow, col_stride);
    }
    return;
  }
  tensor::ParallelChunksKernel(
      n, gemm_flops, [=](int64_t s0, int64_t s1) {
        for (int64_t img = s0; img < s1; ++img) {
          Im2ColSample(in + img * chw, c, h, w, k, s, p, oh, ow,
                       cols + img * ohow, col_stride);
        }
      });
}

}  // namespace

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int kernel, int stride, int padding, bool use_psn)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      use_psn_(use_psn),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}),
      alpha_({1}, {1.0f}),
      alpha_grad_({1}, {0.0f}) {}

std::string Conv2dLayer::ToString() const {
  return util::StrFormat(
      "Conv2d(%lld -> %lld, k=%d, s=%d, p=%d%s)",
      static_cast<long long>(in_channels_),
      static_cast<long long>(out_channels_), kernel_, stride_, padding_,
      use_psn_ ? ", psn" : "");
}

void Conv2dLayer::InitHe(uint64_t seed) {
  util::Rng rng(seed);
  const int64_t fan_in = in_channels_ * kernel_ * kernel_;
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < weight_.size(); ++i) {
    weight_[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
  op_sigma_ = 0.0;
  if (use_psn_) {
    // Initialize alpha to the operator norm (8x8 heuristic; refined at the
    // first Forward) so PSN starts as a no-op.
    RefreshOpSigmaLocked(8, 8, 80);
    alpha_[0] = static_cast<float>(op_sigma_);
  }
}

void Conv2dLayer::RefreshSigmaLocked(int iters) const {
  const Tensor* warm = spec_valid_ ? &spec_.v : nullptr;
  spec_ = PowerIteration(weight_, iters, 1e-10, /*seed=*/11, warm);
  spec_valid_ = true;
}

namespace {
double NormalizeUnit(Tensor* t) {
  const double n = tensor::L2Norm(*t);
  if (n > 0.0) {
    const float inv = static_cast<float>(1.0 / n);
    for (int64_t i = 0; i < t->size(); ++i) (*t)[i] *= inv;
  }
  return n;
}
}  // namespace

void Conv2dLayer::RefreshOpSigmaLocked(int64_t h, int64_t w,
                                       int iters) const {
  const int64_t n_in = in_channels_ * h * w;
  if (op_h_ != h || op_w_ != w || op_v_.size() != n_in) {
    util::Rng rng(13);
    op_v_ = Tensor({n_in});
    for (int64_t i = 0; i < n_in; ++i) {
      op_v_[i] = static_cast<float>(rng.Normal());
    }
    NormalizeUnit(&op_v_);
    op_h_ = h;
    op_w_ = w;
    iters = std::max(iters, 60);
  }
  Tensor u, back;
  for (int it = 0; it < iters; ++it) {
    ApplySingle(weight_, op_v_, h, w, &u);
    NormalizeUnit(&u);
    ApplySingleTranspose(weight_, u, h, w, &back);
    NormalizeUnit(&back);
    op_v_ = back;
  }
  ApplySingle(weight_, op_v_, h, w, &u);
  op_sigma_ = tensor::L2Norm(u);
}

Tensor Conv2dLayer::PsnSnapshot(int64_t h, int64_t w, int iters) const {
  std::lock_guard<std::mutex> lock(spec_mu_);
  if (h > 0) {
    RefreshOpSigmaLocked(h, w, iters);
  } else if (op_sigma_ <= 0.0) {
    // No spatial context yet (standalone profiling): default square size
    // heuristic, matching the seed behavior.
    RefreshOpSigmaLocked(/*h=*/8, /*w=*/8, 80);
  }
  Tensor eff = weight_;
  const double sigma = std::max(op_sigma_, 1e-20);
  tensor::Scale(&eff, static_cast<float>(alpha_[0] / sigma));
  return eff;
}

const Tensor& Conv2dLayer::EffectiveWeight() const {
  if (!use_psn_) return weight_;
  // Use the operator norm at the last-seen spatial size (h = 0).
  Tensor eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  std::lock_guard<std::mutex> lock(spec_mu_);
  eff_cache_ = std::move(eff);
  return eff_cache_;
}

void Conv2dLayer::FoldPsn() {
  if (!use_psn_) return;
  weight_ = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  use_psn_ = false;
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
  op_sigma_ = 0.0;
}

double Conv2dLayer::MatrixSpectralNorm() const {
  if (use_psn_) {
    const Tensor eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
    return PowerIteration(eff, 300, 1e-10, 11).sigma;
  }
  std::lock_guard<std::mutex> lock(spec_mu_);
  RefreshSigmaLocked(spec_valid_ ? 8 : 300);
  return spec_.sigma;
}

void Conv2dLayer::Forward(const Tensor& input, Tensor* output,
                          bool training) {
  EF_CHECK(input.ndim() == 4 && input.dim(1) == in_channels_);
  const int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  EF_CHECK(oh > 0 && ow > 0);
  if (!ShapeIs4(*output, n, out_channels_, oh, ow)) {
    *output = Tensor({n, out_channels_, oh, ow});
  }
  Tensor psn_eff;
  const Tensor* eff = &weight_;
  if (use_psn_) {
    // Track the operator norm at the actual spatial size; two warm-started
    // iterations per step keep it current as the weights move. The
    // snapshot is a private copy, so concurrent Forward calls never share
    // a mutating effective-weight buffer.
    bool warm;
    {
      std::lock_guard<std::mutex> lock(spec_mu_);
      warm = op_h_ == h && op_w_ == w && op_sigma_ > 0.0;
    }
    psn_eff = PsnSnapshot(h, w, warm ? (training ? 2 : 30) : 80);
    eff = &psn_eff;
  }

  // Batched execution: one channel-major (C*K*K, N*OH*OW) column matrix
  // covering every sample, one GEMM large enough to fan out across the
  // pool, then a contiguous bias-add re-layout to NCHW (the GEMM already
  // emits channel-major rows, so no transpose is needed). Training keeps
  // the columns in the layer so Backward skips the regather; inference
  // uses thread-local scratch so concurrent callers on a shared (folded)
  // layer never contend.
  const int64_t ohow = oh * ow;
  const int64_t cols_n = n * ohow;
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t gemm_flops = 2 * cols_n * out_channels_ * ckk;
  ConvScratch& scratch = LocalScratch();
  float* cols;
  if (training) {
    if (!ShapeIs2(cached_cols_, ckk, cols_n)) {
      cached_cols_ = Tensor({ckk, cols_n});
    }
    cols = cached_cols_.data();
  } else {
    cols = GrowBuffer(&scratch.cols, ckk * cols_n);
  }
  Im2ColBatch(input.data(), n, in_channels_, h, w, kernel_, stride_,
              padding_, oh, ow, gemm_flops, cols);
  if (CalibrationObserver* obs = GetCalibrationObserver()) {
    // The column matrix is exactly what the GEMM multiplies the kernel
    // matrix against — the right Gram basis for data-driven quantization.
    obs->OnLinearInput(this, cols, ckk, cols_n, /*features_are_rows=*/true);
  }
  float* out_mat = GrowBuffer(&scratch.mat, out_channels_ * cols_n);
  tensor::GemmKernel(eff->data(), cols, out_mat, out_channels_, cols_n, ckk);
  // Row oc of out_mat holds channel oc for the whole batch; each (img, oc)
  // output plane is one contiguous OH*OW run with the bias folded in.
  const float* bias = bias_.data();
  float* out = output->data();
  const int64_t out_ch = out_channels_;
  const int64_t sample_out = out_ch * ohow;
  auto relayout = [=](int64_t s0, int64_t s1) {
    for (int64_t img = s0; img < s1; ++img) {
      for (int64_t oc = 0; oc < out_ch; ++oc) {
        const float* __restrict src = out_mat + oc * cols_n + img * ohow;
        float* __restrict dst = out + img * sample_out + oc * ohow;
        const float b = bias[oc];
        for (int64_t pix = 0; pix < ohow; ++pix) dst[pix] = src[pix] + b;
      }
    }
  };
  if (!tensor::KernelWillParallelize(gemm_flops)) {
    relayout(0, n);
  } else {
    tensor::ParallelChunksKernel(n, gemm_flops, relayout);
  }
  if (training) {
    cached_input_ = input;
    if (use_psn_) cached_eff_weight_ = std::move(psn_eff);
  }
}

void Conv2dLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_input->shape() != x.shape()) *grad_input = Tensor(x.shape());

  const int64_t ohow = oh * ow;
  const int64_t cols_n = n * ohow;
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t chw = in_channels_ * h * w;
  const int64_t sample_out = out_channels_ * ohow;
  const int64_t gemm_flops = 2 * cols_n * out_channels_ * ckk;

  // Channel-major view of grad_output: (out_ch, N*OH*OW), matching the
  // column matrix. Each (img, oc) plane is one contiguous memcpy.
  if (!ShapeIs2(bwd_gmat_, out_channels_, cols_n)) {
    bwd_gmat_ = Tensor({out_channels_, cols_n});
  }
  float* gmat = bwd_gmat_.data();
  const float* go = grad_output.data();
  const int64_t out_ch = out_channels_;
  auto gather = [=](int64_t s0, int64_t s1) {
    for (int64_t img = s0; img < s1; ++img) {
      for (int64_t oc = 0; oc < out_ch; ++oc) {
        std::memcpy(gmat + oc * cols_n + img * ohow,
                    go + img * sample_out + oc * ohow,
                    static_cast<size_t>(ohow) * sizeof(float));
      }
    }
  };
  if (!tensor::KernelWillParallelize(gemm_flops)) {
    gather(0, n);
  } else {
    tensor::ParallelChunksKernel(n, gemm_flops, gather);
  }

  // Bias grads: per-channel double accumulation straight off grad_output's
  // channel-major layout (contiguous per-plane sums).
  if (static_cast<int64_t>(bwd_bias_acc_.size()) < out_channels_) {
    bwd_bias_acc_.resize(static_cast<size_t>(out_channels_));
  }
  std::fill(bwd_bias_acc_.begin(), bwd_bias_acc_.end(), 0.0);
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      const float* plane = go + img * sample_out + oc * ohow;
      double acc = 0.0;
      for (int64_t pix = 0; pix < ohow; ++pix) acc += plane[pix];
      bwd_bias_acc_[static_cast<size_t>(oc)] += acc;
    }
  }
  for (int64_t oc = 0; oc < out_channels_; ++oc) {
    bias_grad_[oc] += static_cast<float>(bwd_bias_acc_[static_cast<size_t>(oc)]);
  }

  // Column matrix: normally cached by the training Forward; regathered
  // defensively if a caller invokes Backward with stale geometry.
  if (!ShapeIs2(cached_cols_, ckk, cols_n)) {
    cached_cols_ = Tensor({ckk, cols_n});
    Im2ColBatch(x.data(), n, in_channels_, h, w, kernel_, stride_, padding_,
                oh, ow, gemm_flops, cached_cols_.data());
  }

  // Weight gradient in one batched GemmNT over all samples' pixels:
  // dW (out_ch, C*K*K) = G (out_ch, N*OH*OW) x cols^T.
  if (!ShapeIs2(bwd_grad_eff_, out_channels_, ckk)) {
    bwd_grad_eff_ = Tensor({out_channels_, ckk});
  }
  tensor::GemmNTKernel(gmat, cached_cols_.data(), bwd_grad_eff_.data(),
                       out_channels_, ckk, cols_n);
  const Tensor& grad_eff = bwd_grad_eff_;

  // Input gradient: one batched GemmTN into channel-major gradient columns
  // (C*K*K, N*OH*OW) = W_eff^T x G, then a sample-parallel col2im scatter
  // (each sample zeroes and owns its own (C,H,W) block, so threaded ==
  // serial bit-for-bit).
  if (!ShapeIs2(bwd_gcols_, ckk, cols_n)) {
    bwd_gcols_ = Tensor({ckk, cols_n});
  }
  const Tensor& w_eff = use_psn_ ? cached_eff_weight_ : weight_;
  tensor::GemmTNKernel(w_eff.data(), gmat, bwd_gcols_.data(), ckk, cols_n,
                       out_channels_);
  const float* gcols = bwd_gcols_.data();
  float* gin = grad_input->data();
  const int kernel = kernel_, stride = stride_, padding = padding_;
  const int64_t in_ch = in_channels_;
  auto scatter = [=](int64_t s0, int64_t s1) {
    for (int64_t img = s0; img < s1; ++img) {
      float* dst = gin + img * chw;
      std::memset(dst, 0, static_cast<size_t>(chw) * sizeof(float));
      Col2ImSample(gcols + img * ohow, cols_n, in_ch, h, w, kernel, stride,
                   padding, oh, ow, dst);
    }
  };
  if (!tensor::KernelWillParallelize(gemm_flops)) {
    scatter(0, n);
  } else {
    tensor::ParallelChunksKernel(n, gemm_flops, scatter);
  }

  if (!use_psn_) {
    tensor::Add(weight_grad_, grad_eff, &weight_grad_);
  } else {
    // Operator-norm PSN: treat sigma as a constant scale in backward (the
    // exact correction is a rank-1 term in the linearized-operator space;
    // omitting it biases alpha slightly but keeps training stable).
    std::lock_guard<std::mutex> lock(spec_mu_);
    const double sigma = std::max(op_sigma_, 1e-20);
    const float a = alpha_[0];
    double inner = 0.0;
    for (int64_t i = 0; i < grad_eff.size(); ++i) {
      inner += static_cast<double>(grad_eff[i]) *
               (static_cast<double>(weight_[i]) / sigma);
    }
    alpha_grad_[0] += static_cast<float>(inner);
    const float scale = static_cast<float>(a / sigma);
    for (int64_t i = 0; i < weight_grad_.size(); ++i) {
      weight_grad_[i] += scale * grad_eff[i];
    }
  }
}

std::vector<Param> Conv2dLayer::Params() {
  std::vector<Param> params = {
      Param{"weight", &weight_, &weight_grad_, /*decay=*/true},
      Param{"bias", &bias_, &bias_grad_, /*decay=*/false},
  };
  if (use_psn_) {
    params.push_back(Param{"alpha", &alpha_, &alpha_grad_, /*decay=*/false});
  }
  return params;
}

std::unique_ptr<Layer> Conv2dLayer::Clone() const {
  auto copy = std::make_unique<Conv2dLayer>(
      in_channels_, out_channels_, kernel_, stride_, padding_, use_psn_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->alpha_ = alpha_;
  return copy;
}

Shape Conv2dLayer::OutputShape(const Shape& input_shape) const {
  EF_CHECK(input_shape.size() == 4);
  return {input_shape[0], out_channels_,
          OutDim(input_shape[2], kernel_, stride_, padding_),
          OutDim(input_shape[3], kernel_, stride_, padding_)};
}

void Conv2dLayer::ApplySingle(const Tensor& weight_mat, const Tensor& in_flat,
                              int64_t h, int64_t w, Tensor* out_flat) const {
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  const int64_t ohow = oh * ow;
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  ConvScratch& scratch = LocalScratch();
  float* cols = GrowBuffer(&scratch.cols, ckk * ohow);
  Im2ColSample(in_flat.data(), in_channels_, h, w, kernel_, stride_,
               padding_, oh, ow, cols, /*col_stride=*/ohow);
  if (out_flat->ndim() != 1 || out_flat->dim(0) != out_channels_ * ohow) {
    *out_flat = Tensor({out_channels_ * ohow});
  }
  // Channel-major columns: the GEMM output is already the flattened
  // (out_ch, OH*OW) activation — no transpose.
  tensor::GemmKernel(weight_mat.data(), cols, out_flat->data(),
                     out_channels_, ohow, ckk);
}

void Conv2dLayer::ApplySingleTranspose(const Tensor& weight_mat,
                                       const Tensor& in_flat, int64_t h,
                                       int64_t w, Tensor* out_flat) const {
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  const int64_t ohow = oh * ow;
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  ConvScratch& scratch = LocalScratch();
  // The flattened (out_ch, OH*OW) input is already channel-major, so it
  // feeds the GemmTN directly — no transpose.
  float* gcols = GrowBuffer(&scratch.cols, ckk * ohow);
  tensor::GemmTNKernel(weight_mat.data(), in_flat.data(), gcols, ckk, ohow,
                       out_channels_);
  if (out_flat->ndim() != 1 || out_flat->dim(0) != in_channels_ * h * w) {
    *out_flat = Tensor({in_channels_ * h * w});
  }
  std::memset(out_flat->data(), 0,
              static_cast<size_t>(in_channels_ * h * w) * sizeof(float));
  Col2ImSample(gcols, /*col_stride=*/ohow, in_channels_, h, w, kernel_,
               stride_, padding_, oh, ow, out_flat->data());
}

double Conv2dLayer::OperatorNorm(int64_t h, int64_t w) const {
  Tensor psn_eff;
  if (use_psn_) psn_eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  const Tensor& eff = use_psn_ ? psn_eff : weight_;
  const int64_t n_in = in_channels_ * h * w;
  auto fwd = [&](const Tensor& v, Tensor* out) {
    ApplySingle(eff, v, h, w, out);
  };
  auto tr = [&](const Tensor& u, Tensor* out) {
    ApplySingleTranspose(eff, u, h, w, out);
  };
  return PowerIterationOp(fwd, tr, n_in, 120, 1e-8, /*seed=*/5).sigma;
}

}  // namespace nn
}  // namespace errorflow
