#include "nn/conv2d.h"

#include <cmath>

#include "tensor/norms.h"
#include "tensor/ops.h"
#include "util/random.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

int64_t OutDim(int64_t in, int kernel, int stride, int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

// Gathers conv patches of one (C,H,W) sample into a (OH*OW, C*K*K) matrix.
void Im2Col(const float* in, int64_t c, int64_t h, int64_t w, int k, int s,
            int p, Tensor* cols) {
  const int64_t oh = OutDim(h, k, s, p), ow = OutDim(w, k, s, p);
  const int64_t ckk = c * k * k;
  if (cols->shape() != tensor::Shape{oh * ow, ckk}) {
    *cols = Tensor({oh * ow, ckk});
  }
  float* out = cols->data();
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      float* row = out + (oy * ow + ox) * ckk;
      int64_t idx = 0;
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* plane = in + ch * h * w;
        for (int ky = 0; ky < k; ++ky) {
          const int64_t iy = oy * s + ky - p;
          for (int kx = 0; kx < k; ++kx) {
            const int64_t ix = ox * s + kx - p;
            row[idx++] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                             ? plane[iy * w + ix]
                             : 0.0f;
          }
        }
      }
    }
  }
}

// Scatter-adds a (OH*OW, C*K*K) gradient matrix back into a (C,H,W) sample.
void Col2Im(const Tensor& cols, int64_t c, int64_t h, int64_t w, int k,
            int s, int p, float* out) {
  const int64_t oh = OutDim(h, k, s, p), ow = OutDim(w, k, s, p);
  const int64_t ckk = c * k * k;
  const float* in = cols.data();
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      const float* row = in + (oy * ow + ox) * ckk;
      int64_t idx = 0;
      for (int64_t ch = 0; ch < c; ++ch) {
        float* plane = out + ch * h * w;
        for (int ky = 0; ky < k; ++ky) {
          const int64_t iy = oy * s + ky - p;
          for (int kx = 0; kx < k; ++kx) {
            const int64_t ix = ox * s + kx - p;
            if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
              plane[iy * w + ix] += row[idx];
            }
            ++idx;
          }
        }
      }
    }
  }
}

}  // namespace

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int kernel, int stride, int padding, bool use_psn)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      use_psn_(use_psn),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}),
      alpha_({1}, {1.0f}),
      alpha_grad_({1}, {0.0f}) {}

std::string Conv2dLayer::ToString() const {
  return util::StrFormat(
      "Conv2d(%lld -> %lld, k=%d, s=%d, p=%d%s)",
      static_cast<long long>(in_channels_),
      static_cast<long long>(out_channels_), kernel_, stride_, padding_,
      use_psn_ ? ", psn" : "");
}

void Conv2dLayer::InitHe(uint64_t seed) {
  util::Rng rng(seed);
  const int64_t fan_in = in_channels_ * kernel_ * kernel_;
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in));
  for (int64_t i = 0; i < weight_.size(); ++i) {
    weight_[i] = static_cast<float>(rng.Uniform(-limit, limit));
  }
  bias_.Fill(0.0f);
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
  op_sigma_ = 0.0;
  if (use_psn_) {
    // Initialize alpha to the operator norm (8x8 heuristic; refined at the
    // first Forward) so PSN starts as a no-op.
    RefreshOpSigmaLocked(8, 8, 80);
    alpha_[0] = static_cast<float>(op_sigma_);
  }
}

void Conv2dLayer::RefreshSigmaLocked(int iters) const {
  const Tensor* warm = spec_valid_ ? &spec_.v : nullptr;
  spec_ = PowerIteration(weight_, iters, 1e-10, /*seed=*/11, warm);
  spec_valid_ = true;
}

namespace {
double NormalizeUnit(Tensor* t) {
  const double n = tensor::L2Norm(*t);
  if (n > 0.0) {
    const float inv = static_cast<float>(1.0 / n);
    for (int64_t i = 0; i < t->size(); ++i) (*t)[i] *= inv;
  }
  return n;
}
}  // namespace

void Conv2dLayer::RefreshOpSigmaLocked(int64_t h, int64_t w,
                                       int iters) const {
  const int64_t n_in = in_channels_ * h * w;
  if (op_h_ != h || op_w_ != w || op_v_.size() != n_in) {
    util::Rng rng(13);
    op_v_ = Tensor({n_in});
    for (int64_t i = 0; i < n_in; ++i) {
      op_v_[i] = static_cast<float>(rng.Normal());
    }
    NormalizeUnit(&op_v_);
    op_h_ = h;
    op_w_ = w;
    iters = std::max(iters, 60);
  }
  Tensor u, back;
  for (int it = 0; it < iters; ++it) {
    ApplySingle(weight_, op_v_, h, w, &u);
    NormalizeUnit(&u);
    ApplySingleTranspose(weight_, u, h, w, &back);
    NormalizeUnit(&back);
    op_v_ = back;
  }
  ApplySingle(weight_, op_v_, h, w, &u);
  op_sigma_ = tensor::L2Norm(u);
}

Tensor Conv2dLayer::PsnSnapshot(int64_t h, int64_t w, int iters) const {
  std::lock_guard<std::mutex> lock(spec_mu_);
  if (h > 0) {
    RefreshOpSigmaLocked(h, w, iters);
  } else if (op_sigma_ <= 0.0) {
    // No spatial context yet (standalone profiling): default square size
    // heuristic, matching the seed behavior.
    RefreshOpSigmaLocked(/*h=*/8, /*w=*/8, 80);
  }
  Tensor eff = weight_;
  const double sigma = std::max(op_sigma_, 1e-20);
  tensor::Scale(&eff, static_cast<float>(alpha_[0] / sigma));
  return eff;
}

const Tensor& Conv2dLayer::EffectiveWeight() const {
  if (!use_psn_) return weight_;
  // Use the operator norm at the last-seen spatial size (h = 0).
  Tensor eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  std::lock_guard<std::mutex> lock(spec_mu_);
  eff_cache_ = std::move(eff);
  return eff_cache_;
}

void Conv2dLayer::FoldPsn() {
  if (!use_psn_) return;
  weight_ = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  use_psn_ = false;
  std::lock_guard<std::mutex> lock(spec_mu_);
  spec_valid_ = false;
  op_sigma_ = 0.0;
}

double Conv2dLayer::MatrixSpectralNorm() const {
  if (use_psn_) {
    const Tensor eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
    return PowerIteration(eff, 300, 1e-10, 11).sigma;
  }
  std::lock_guard<std::mutex> lock(spec_mu_);
  RefreshSigmaLocked(spec_valid_ ? 8 : 300);
  return spec_.sigma;
}

void Conv2dLayer::Forward(const Tensor& input, Tensor* output,
                          bool training) {
  EF_CHECK(input.ndim() == 4 && input.dim(1) == in_channels_);
  const int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  EF_CHECK(oh > 0 && ow > 0);
  if (output->shape() != Shape{n, out_channels_, oh, ow}) {
    *output = Tensor({n, out_channels_, oh, ow});
  }
  Tensor psn_eff;
  const Tensor* eff = &weight_;
  if (use_psn_) {
    // Track the operator norm at the actual spatial size; two warm-started
    // iterations per step keep it current as the weights move. The
    // snapshot is a private copy, so concurrent Forward calls never share
    // a mutating effective-weight buffer.
    bool warm;
    {
      std::lock_guard<std::mutex> lock(spec_mu_);
      warm = op_h_ == h && op_w_ == w && op_sigma_ > 0.0;
    }
    psn_eff = PsnSnapshot(h, w, warm ? (training ? 2 : 30) : 80);
    eff = &psn_eff;
  }

  Tensor cols, out_mat;
  for (int64_t s = 0; s < n; ++s) {
    Im2Col(input.data() + s * in_channels_ * h * w, in_channels_, h, w,
           kernel_, stride_, padding_, &cols);
    tensor::GemmNT(cols, *eff, &out_mat);  // (OH*OW, out_ch)
    float* out = output->data() + s * out_channels_ * oh * ow;
    for (int64_t pix = 0; pix < oh * ow; ++pix) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        out[oc * oh * ow + pix] = out_mat.at(pix, oc) + bias_[oc];
      }
    }
  }
  if (training) {
    cached_input_ = input;
    if (use_psn_) cached_eff_weight_ = std::move(psn_eff);
  }
}

void Conv2dLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_input->shape() != x.shape()) *grad_input = Tensor(x.shape());
  grad_input->Fill(0.0f);

  Tensor grad_eff({out_channels_, in_channels_ * kernel_ * kernel_});
  Tensor cols, gmat({oh * ow, out_channels_}), gcols, contrib;
  for (int64_t s = 0; s < n; ++s) {
    // Rearrange grad_output sample into (OH*OW, out_ch).
    const float* go = grad_output.data() + s * out_channels_ * oh * ow;
    for (int64_t pix = 0; pix < oh * ow; ++pix) {
      for (int64_t oc = 0; oc < out_channels_; ++oc) {
        gmat.at(pix, oc) = go[oc * oh * ow + pix];
      }
    }
    // Bias grads: sum over pixels.
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      double acc = 0.0;
      for (int64_t pix = 0; pix < oh * ow; ++pix) acc += gmat.at(pix, oc);
      bias_grad_[oc] += static_cast<float>(acc);
    }
    Im2Col(x.data() + s * in_channels_ * h * w, in_channels_, h, w, kernel_,
           stride_, padding_, &cols);
    tensor::GemmTN(gmat, cols, &contrib);  // (out_ch, C*K*K)
    tensor::Add(grad_eff, contrib, &grad_eff);
    // Input grads: gcols = gmat * W_eff, then scatter. Without PSN the
    // effective weight is the stored weight (not separately cached).
    tensor::Gemm(gmat, use_psn_ ? cached_eff_weight_ : weight_, &gcols);
    Col2Im(gcols, in_channels_, h, w, kernel_, stride_, padding_,
           grad_input->data() + s * in_channels_ * h * w);
  }

  if (!use_psn_) {
    tensor::Add(weight_grad_, grad_eff, &weight_grad_);
  } else {
    // Operator-norm PSN: treat sigma as a constant scale in backward (the
    // exact correction is a rank-1 term in the linearized-operator space;
    // omitting it biases alpha slightly but keeps training stable).
    std::lock_guard<std::mutex> lock(spec_mu_);
    const double sigma = std::max(op_sigma_, 1e-20);
    const float a = alpha_[0];
    double inner = 0.0;
    for (int64_t i = 0; i < grad_eff.size(); ++i) {
      inner += static_cast<double>(grad_eff[i]) *
               (static_cast<double>(weight_[i]) / sigma);
    }
    alpha_grad_[0] += static_cast<float>(inner);
    const float scale = static_cast<float>(a / sigma);
    for (int64_t i = 0; i < weight_grad_.size(); ++i) {
      weight_grad_[i] += scale * grad_eff[i];
    }
  }
}

std::vector<Param> Conv2dLayer::Params() {
  std::vector<Param> params = {
      Param{"weight", &weight_, &weight_grad_, /*decay=*/true},
      Param{"bias", &bias_, &bias_grad_, /*decay=*/false},
  };
  if (use_psn_) {
    params.push_back(Param{"alpha", &alpha_, &alpha_grad_, /*decay=*/false});
  }
  return params;
}

std::unique_ptr<Layer> Conv2dLayer::Clone() const {
  auto copy = std::make_unique<Conv2dLayer>(
      in_channels_, out_channels_, kernel_, stride_, padding_, use_psn_);
  copy->weight_ = weight_;
  copy->bias_ = bias_;
  copy->alpha_ = alpha_;
  return copy;
}

Shape Conv2dLayer::OutputShape(const Shape& input_shape) const {
  EF_CHECK(input_shape.size() == 4);
  return {input_shape[0], out_channels_,
          OutDim(input_shape[2], kernel_, stride_, padding_),
          OutDim(input_shape[3], kernel_, stride_, padding_)};
}

void Conv2dLayer::ApplySingle(const Tensor& weight_mat, const Tensor& in_flat,
                              int64_t h, int64_t w, Tensor* out_flat) const {
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  Tensor cols, out_mat;
  Im2Col(in_flat.data(), in_channels_, h, w, kernel_, stride_, padding_,
         &cols);
  tensor::GemmNT(cols, weight_mat, &out_mat);
  if (out_flat->shape() != Shape{out_channels_ * oh * ow}) {
    *out_flat = Tensor({out_channels_ * oh * ow});
  }
  for (int64_t pix = 0; pix < oh * ow; ++pix) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      (*out_flat)[oc * oh * ow + pix] = out_mat.at(pix, oc);
    }
  }
}

void Conv2dLayer::ApplySingleTranspose(const Tensor& weight_mat,
                                       const Tensor& in_flat, int64_t h,
                                       int64_t w, Tensor* out_flat) const {
  const int64_t oh = OutDim(h, kernel_, stride_, padding_);
  const int64_t ow = OutDim(w, kernel_, stride_, padding_);
  Tensor gmat({oh * ow, out_channels_});
  for (int64_t pix = 0; pix < oh * ow; ++pix) {
    for (int64_t oc = 0; oc < out_channels_; ++oc) {
      gmat.at(pix, oc) = in_flat[oc * oh * ow + pix];
    }
  }
  Tensor gcols;
  tensor::Gemm(gmat, weight_mat, &gcols);
  if (out_flat->shape() != Shape{in_channels_ * h * w}) {
    *out_flat = Tensor({in_channels_ * h * w});
  }
  out_flat->Fill(0.0f);
  Col2Im(gcols, in_channels_, h, w, kernel_, stride_, padding_,
         out_flat->data());
}

double Conv2dLayer::OperatorNorm(int64_t h, int64_t w) const {
  Tensor psn_eff;
  if (use_psn_) psn_eff = PsnSnapshot(/*h=*/0, /*w=*/0, /*iters=*/0);
  const Tensor& eff = use_psn_ ? psn_eff : weight_;
  const int64_t n_in = in_channels_ * h * w;
  auto fwd = [&](const Tensor& v, Tensor* out) {
    ApplySingle(eff, v, h, w, out);
  };
  auto tr = [&](const Tensor& u, Tensor* out) {
    ApplySingleTranspose(eff, u, h, w, out);
  };
  return PowerIterationOp(fwd, tr, n_in, 120, 1e-8, /*seed=*/5).sigma;
}

}  // namespace nn
}  // namespace errorflow
