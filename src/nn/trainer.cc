#include "nn/trainer.h"

#include <numeric>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace errorflow {
namespace nn {

namespace {

// Copies `indices` rows/samples of `src` into a batch tensor.
Tensor GatherBatch(const Tensor& src, const std::vector<int64_t>& indices,
                   size_t begin, size_t end) {
  const int64_t total = src.dim(0);
  EF_CHECK(total > 0);
  const int64_t per_sample = src.size() / total;
  const int64_t batch = static_cast<int64_t>(end - begin);
  tensor::Shape shape = src.shape();
  shape[0] = batch;
  Tensor out(shape);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t s = indices[begin + static_cast<size_t>(b)];
    const float* from = src.data() + s * per_sample;
    float* to = out.data() + b * per_sample;
    std::copy(from, from + per_sample, to);
  }
  return out;
}

}  // namespace

std::vector<EpochStats> Trainer::Fit(Model* model, const Tensor& inputs,
                                     const Tensor& targets, const Loss& loss,
                                     Optimizer* opt) {
  const int64_t n = inputs.dim(0);
  EF_CHECK(n == targets.dim(0));
  util::Rng rng(config_.seed);
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* epochs_done =
      registry.GetCounter("errorflow.train.epochs");
  obs::Gauge* loss_gauge = registry.GetGauge("errorflow.train.loss");
  obs::Gauge* penalty_gauge =
      registry.GetGauge("errorflow.train.spectral_penalty");
  penalty_gauge->Set(config_.spectral_penalty);

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    // Fisher-Yates shuffle with our deterministic RNG.
    for (size_t i = order.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(rng.UniformU64(i));
      std::swap(order[i - 1], order[j]);
    }
    double epoch_loss = 0.0;
    int64_t batches = 0;
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t stop = std::min(n, start + config_.batch_size);
      const Tensor bx = GatherBatch(inputs, order,
                                    static_cast<size_t>(start),
                                    static_cast<size_t>(stop));
      const Tensor by = GatherBatch(targets, order,
                                    static_cast<size_t>(start),
                                    static_cast<size_t>(stop));
      model->ZeroGrads();
      Tensor pred;
      model->Forward(bx, &pred, /*training=*/true);
      Tensor grad;
      epoch_loss += loss.Compute(pred, by, &grad);
      model->Backward(grad);

      if (config_.spectral_penalty > 0.0) {
        // d/d_alpha (lambda * alpha^2) = 2 * lambda * alpha.
        const float lam = static_cast<float>(config_.spectral_penalty);
        model->VisitLayers([lam](Layer* layer) {
          for (Param& p : layer->Params()) {
            if (p.name == "alpha") {
              (*p.grad)[0] += 2.0f * lam * (*p.value)[0];
            }
          }
        });
      }

      opt->Step(model->Params());

      // Keep PReLU slopes within [0, 1] so the activation derivative bound
      // C = 1 of the error analysis holds.
      model->VisitLayers([](Layer* layer) {
        if (auto* act = dynamic_cast<ActivationLayer*>(layer)) {
          act->ClampSlope();
        }
      });
      ++batches;
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = epoch_loss / static_cast<double>(batches);
    history.push_back(stats);
    epochs_done->Increment();
    loss_gauge->Set(stats.train_loss);
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      obs::Logf(obs::LogLevel::kInfo, "train %s epoch %3d loss %.6g",
                model->name().c_str(), epoch, stats.train_loss);
    }
  }
  return history;
}

double Trainer::Evaluate(Model* model, const Tensor& inputs,
                         const Tensor& targets, const Loss& loss) {
  Tensor pred;
  model->Forward(inputs, &pred, /*training=*/false);
  return loss.Compute(pred, targets, nullptr);
}

}  // namespace nn
}  // namespace errorflow
