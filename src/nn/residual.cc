#include "nn/residual.h"

#include "tensor/ops.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

ResidualBlock::ResidualBlock(std::vector<std::unique_ptr<Layer>> body,
                             std::unique_ptr<Layer> shortcut,
                             std::unique_ptr<Layer> post_activation)
    : body_(std::move(body)),
      shortcut_(std::move(shortcut)),
      post_activation_(std::move(post_activation)) {
  EF_CHECK(!body_.empty());
}

std::string ResidualBlock::ToString() const {
  std::vector<std::string> parts;
  for (const auto& l : body_) parts.push_back(l->ToString());
  return util::StrFormat(
      "Residual{%s | shortcut=%s}", util::Join(parts, ", ").c_str(),
      shortcut_ ? shortcut_->ToString().c_str() : "identity");
}

void ResidualBlock::Forward(const Tensor& input, Tensor* output,
                            bool training) {
  if (training) acts_.assign(body_.size() + 1, Tensor());
  if (training) acts_[0] = input;
  // Ping-pong between two buffers instead of copying each layer's output
  // into `cur` (those copies dominated the block's non-GEMM time).
  Tensor bufs[2];
  const Tensor* cur = &input;
  for (size_t i = 0; i < body_.size(); ++i) {
    Tensor* next = &bufs[i % 2];
    body_[i]->Forward(*cur, next, training);
    cur = next;
    if (training) acts_[i + 1] = *cur;
  }
  Tensor shortcut_val;
  const Tensor* shortcut_out = &input;
  if (shortcut_ != nullptr) {
    shortcut_->Forward(input, &shortcut_val, training);
    shortcut_out = &shortcut_val;
  }
  EF_CHECK(cur->size() == shortcut_out->size());
  Tensor sum;
  tensor::Add(*cur, *shortcut_out, &sum);
  if (post_activation_ != nullptr) {
    post_activation_->Forward(sum, output, training);
  } else {
    *output = std::move(sum);
  }
}

void ResidualBlock::Backward(const Tensor& grad_output, Tensor* grad_input) {
  Tensor grad_sum;
  if (post_activation_ != nullptr) {
    post_activation_->Backward(grad_output, &grad_sum);
  } else {
    grad_sum = grad_output;
  }
  // Body path, ping-ponged like Forward to avoid per-layer copies.
  Tensor bufs[2];
  const Tensor* g = &grad_sum;
  for (size_t i = body_.size(); i-- > 0;) {
    Tensor* gprev = &bufs[i % 2];
    body_[i]->Backward(*g, gprev);
    g = gprev;
  }
  // Shortcut path.
  Tensor g_short_val;
  const Tensor* g_short = &grad_sum;
  if (shortcut_ != nullptr) {
    shortcut_->Backward(grad_sum, &g_short_val);
    g_short = &g_short_val;
  }
  // Reshape-safe sum: both gradients refer to the block input.
  EF_CHECK(g->size() == g_short->size());
  if (grad_input->shape() != g->shape()) *grad_input = Tensor(g->shape());
  const float* __restrict ga = g->data();
  const float* __restrict gb = g_short->data();
  float* __restrict gi = grad_input->data();
  const int64_t sz = g->size();
  for (int64_t i = 0; i < sz; ++i) gi[i] = ga[i] + gb[i];
}

std::vector<Param> ResidualBlock::Params() {
  std::vector<Param> params;
  for (auto& l : body_) {
    for (Param& p : l->Params()) params.push_back(p);
  }
  if (shortcut_ != nullptr) {
    for (Param& p : shortcut_->Params()) params.push_back(p);
  }
  if (post_activation_ != nullptr) {
    for (Param& p : post_activation_->Params()) params.push_back(p);
  }
  return params;
}

std::unique_ptr<Layer> ResidualBlock::Clone() const {
  std::vector<std::unique_ptr<Layer>> body;
  body.reserve(body_.size());
  for (const auto& l : body_) body.push_back(l->Clone());
  return std::make_unique<ResidualBlock>(
      std::move(body), shortcut_ ? shortcut_->Clone() : nullptr,
      post_activation_ ? post_activation_->Clone() : nullptr);
}

Shape ResidualBlock::OutputShape(const Shape& input_shape) const {
  Shape s = input_shape;
  for (const auto& l : body_) s = l->OutputShape(s);
  return s;
}

}  // namespace nn
}  // namespace errorflow
