#include "nn/builders.h"

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/residual.h"
#include "nn/pool.h"
#include "util/macros.h"

namespace errorflow {
namespace nn {

Model BuildMlp(const MlpConfig& config) {
  EF_CHECK(config.input_dim > 0 && config.output_dim > 0);
  Model model(config.name);
  uint64_t seed = config.seed;
  int64_t in_dim = config.input_dim;
  for (int64_t width : config.hidden_dims) {
    auto dense = std::make_unique<DenseLayer>(in_dim, width, config.use_psn);
    dense->InitXavier(seed++);
    model.Add(std::move(dense));
    model.Add(std::make_unique<ActivationLayer>(config.activation));
    in_dim = width;
  }
  auto head =
      std::make_unique<DenseLayer>(in_dim, config.output_dim, config.use_psn);
  head->InitXavier(seed++);
  model.Add(std::move(head));
  return model;
}

namespace {

std::unique_ptr<ResidualBlock> MakeBasicBlock(int64_t in_ch, int64_t out_ch,
                                              int stride,
                                              ActivationKind activation,
                                              bool use_psn,
                                              double psn_branch_alpha,
                                              uint64_t* seed) {
  std::vector<std::unique_ptr<Layer>> body;
  auto conv1 =
      std::make_unique<Conv2dLayer>(in_ch, out_ch, 3, stride, 1, use_psn);
  conv1->InitHe((*seed)++);
  if (use_psn && psn_branch_alpha > 0.0) {
    conv1->set_alpha(std::min(conv1->alpha(),
                              static_cast<float>(psn_branch_alpha)));
  }
  body.push_back(std::move(conv1));
  body.push_back(std::make_unique<ActivationLayer>(activation));
  auto conv2 = std::make_unique<Conv2dLayer>(out_ch, out_ch, 3, 1, 1,
                                             use_psn);
  conv2->InitHe((*seed)++);
  if (use_psn && psn_branch_alpha > 0.0) {
    conv2->set_alpha(std::min(conv2->alpha(),
                              static_cast<float>(psn_branch_alpha)));
  }
  body.push_back(std::move(conv2));

  std::unique_ptr<Layer> shortcut;
  if (stride != 1 || in_ch != out_ch) {
    auto proj =
        std::make_unique<Conv2dLayer>(in_ch, out_ch, 1, stride, 0, use_psn);
    proj->InitHe((*seed)++);
    shortcut = std::move(proj);
  }
  auto post = std::make_unique<ActivationLayer>(activation);
  return std::make_unique<ResidualBlock>(std::move(body), std::move(shortcut),
                                         std::move(post));
}

}  // namespace

Model BuildResNet(const ResNetConfig& config) {
  EF_CHECK(!config.stage_channels.empty() &&
           config.stage_channels.size() == config.stage_blocks.size());
  Model model(config.name);
  uint64_t seed = config.seed;

  auto stem = std::make_unique<Conv2dLayer>(
      config.in_channels, config.stage_channels[0], 3, 1, 1, config.use_psn);
  stem->InitHe(seed++);
  model.Add(std::move(stem));
  model.Add(std::make_unique<ActivationLayer>(config.activation));

  int64_t in_ch = config.stage_channels[0];
  for (size_t stage = 0; stage < config.stage_channels.size(); ++stage) {
    const int64_t out_ch = config.stage_channels[stage];
    for (int b = 0; b < config.stage_blocks[stage]; ++b) {
      const int stride = (b == 0 && stage > 0) ? 2 : 1;
      model.Add(MakeBasicBlock(in_ch, out_ch, stride, config.activation,
                               config.use_psn, config.psn_branch_alpha,
                               &seed));
      in_ch = out_ch;
    }
  }

  model.Add(std::make_unique<GlobalAvgPoolLayer>());
  auto head =
      std::make_unique<DenseLayer>(in_ch, config.num_classes, config.use_psn);
  head->InitXavier(seed++);
  model.Add(std::move(head));
  return model;
}

}  // namespace nn
}  // namespace errorflow
