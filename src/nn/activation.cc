#include "nn/activation.h"

#include <cmath>

#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

// GeLU (tanh approximation) and its derivative.
float Gelu(float x) {
  const float kC = 0.7978845608f;  // sqrt(2/pi)
  const float inner = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

float GeluGrad(float x) {
  const float kC = 0.7978845608f;
  const float x3 = x * x * x;
  const float inner = kC * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kC * (1.0f + 3.0f * 0.044715f * x * x);
}

}  // namespace

const char* ActivationKindToString(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kReLU:
      return "ReLU";
    case ActivationKind::kLeakyReLU:
      return "LeakyReLU";
    case ActivationKind::kPReLU:
      return "PReLU";
    case ActivationKind::kTanh:
      return "Tanh";
    case ActivationKind::kGeLU:
      return "GeLU";
    case ActivationKind::kIdentity:
      return "Identity";
  }
  return "Unknown";
}

double ActivationDerivativeBound(ActivationKind kind) {
  switch (kind) {
    case ActivationKind::kGeLU:
      // max |GeLU'(x)| ~= 1.1289 near x ~ 1.06 (tanh approximation).
      return 1.1290;
    case ActivationKind::kReLU:
    case ActivationKind::kLeakyReLU:
    case ActivationKind::kPReLU:
    case ActivationKind::kTanh:
    case ActivationKind::kIdentity:
      return 1.0;
  }
  return 1.0;
}

ActivationLayer::ActivationLayer(ActivationKind kind, float leaky_slope)
    : kind_(kind),
      slope_({1}, {leaky_slope}),
      slope_grad_({1}, {0.0f}) {}

std::string ActivationLayer::ToString() const {
  return util::StrFormat("Activation(%s)", ActivationKindToString(kind_));
}

void ActivationLayer::Forward(const Tensor& input, Tensor* output,
                              bool training) {
  if (training) cached_input_ = input;
  if (output->shape() != input.shape()) *output = Tensor(input.shape());
  const float a = slope_[0];
  for (int64_t i = 0; i < input.size(); ++i) {
    const float x = input[i];
    float y = x;
    switch (kind_) {
      case ActivationKind::kReLU:
        y = x > 0.0f ? x : 0.0f;
        break;
      case ActivationKind::kLeakyReLU:
      case ActivationKind::kPReLU:
        y = x > 0.0f ? x : a * x;
        break;
      case ActivationKind::kTanh:
        y = std::tanh(x);
        break;
      case ActivationKind::kGeLU:
        y = Gelu(x);
        break;
      case ActivationKind::kIdentity:
        break;
    }
    (*output)[i] = y;
  }
}

void ActivationLayer::Backward(const Tensor& grad_output,
                               Tensor* grad_input) {
  const Tensor& x = cached_input_;
  EF_CHECK(grad_output.size() == x.size());
  if (grad_input->shape() != x.shape()) *grad_input = Tensor(x.shape());
  const float a = slope_[0];
  double slope_grad = 0.0;
  for (int64_t i = 0; i < x.size(); ++i) {
    const float xv = x[i];
    const float g = grad_output[i];
    float d = 1.0f;
    switch (kind_) {
      case ActivationKind::kReLU:
        d = xv > 0.0f ? 1.0f : 0.0f;
        break;
      case ActivationKind::kLeakyReLU:
        d = xv > 0.0f ? 1.0f : a;
        break;
      case ActivationKind::kPReLU:
        d = xv > 0.0f ? 1.0f : a;
        if (xv <= 0.0f) slope_grad += static_cast<double>(g) * xv;
        break;
      case ActivationKind::kTanh: {
        const float t = std::tanh(xv);
        d = 1.0f - t * t;
        break;
      }
      case ActivationKind::kGeLU:
        d = GeluGrad(xv);
        break;
      case ActivationKind::kIdentity:
        d = 1.0f;
        break;
    }
    (*grad_input)[i] = g * d;
  }
  if (kind_ == ActivationKind::kPReLU) {
    slope_grad_[0] += static_cast<float>(slope_grad);
  }
}

std::vector<Param> ActivationLayer::Params() {
  if (kind_ != ActivationKind::kPReLU) return {};
  return {Param{"slope", &slope_, &slope_grad_, /*decay=*/false}};
}

std::unique_ptr<Layer> ActivationLayer::Clone() const {
  auto copy = std::make_unique<ActivationLayer>(kind_, slope_[0]);
  return copy;
}

void ActivationLayer::ClampSlope() {
  slope_[0] = std::min(1.0f, std::max(0.0f, slope_[0]));
}

}  // namespace nn
}  // namespace errorflow
