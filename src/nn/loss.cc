#include "nn/loss.h"

#include <cmath>

#include "util/macros.h"

namespace errorflow {
namespace nn {

double MseLoss::Compute(const Tensor& pred, const Tensor& target,
                        Tensor* grad) const {
  EF_CHECK(pred.size() == target.size());
  const int64_t n = pred.size();
  double acc = 0.0;
  if (grad != nullptr && grad->shape() != pred.shape()) {
    *grad = Tensor(pred.shape());
  }
  const double inv = 1.0 / static_cast<double>(n);
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    acc += d * d;
    if (grad != nullptr) (*grad)[i] = static_cast<float>(2.0 * d * inv);
  }
  return acc * inv;
}

double SoftmaxCrossEntropyLoss::Compute(const Tensor& pred,
                                        const Tensor& target,
                                        Tensor* grad) const {
  EF_CHECK(pred.ndim() == 2 && target.ndim() == 1 &&
           pred.dim(0) == target.dim(0));
  const int64_t batch = pred.dim(0), classes = pred.dim(1);
  if (grad != nullptr && grad->shape() != pred.shape()) {
    *grad = Tensor(pred.shape());
  }
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(batch);
  for (int64_t i = 0; i < batch; ++i) {
    // Numerically stable softmax.
    float mx = pred.at(i, 0);
    for (int64_t j = 1; j < classes; ++j) mx = std::max(mx, pred.at(i, j));
    double denom = 0.0;
    for (int64_t j = 0; j < classes; ++j) {
      denom += std::exp(static_cast<double>(pred.at(i, j)) - mx);
    }
    const int64_t label = static_cast<int64_t>(target[i]);
    EF_CHECK(label >= 0 && label < classes);
    const double logp =
        static_cast<double>(pred.at(i, label)) - mx - std::log(denom);
    loss -= logp;
    if (grad != nullptr) {
      for (int64_t j = 0; j < classes; ++j) {
        const double p =
            std::exp(static_cast<double>(pred.at(i, j)) - mx) / denom;
        const double onehot = (j == label) ? 1.0 : 0.0;
        grad->at(i, j) = static_cast<float>((p - onehot) * inv);
      }
    }
  }
  return loss * inv;
}

double SoftmaxCrossEntropyLoss::Accuracy(const Tensor& pred,
                                         const Tensor& target) {
  EF_CHECK(pred.ndim() == 2 && pred.dim(0) == target.dim(0));
  const int64_t batch = pred.dim(0), classes = pred.dim(1);
  int64_t correct = 0;
  for (int64_t i = 0; i < batch; ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (pred.at(i, j) > pred.at(i, best)) best = j;
    }
    if (best == static_cast<int64_t>(target[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace nn
}  // namespace errorflow
