#ifndef ERRORFLOW_NN_OPTIMIZER_H_
#define ERRORFLOW_NN_OPTIMIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace errorflow {
namespace nn {

/// \brief Base class for gradient-descent optimizers. Per-parameter state
/// (momentum, Adam moments) is keyed by the parameter tensor's address,
/// which is stable for a model's lifetime.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to every parameter from its accumulated gradient.
  virtual void Step(const std::vector<Param>& params) = 0;

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// \brief Stochastic gradient descent with classical momentum and optional
/// decoupled L2 weight decay (applied only to params with decay=true).
/// The optimizer used for the H2-combustion and EuroSAT models in the paper.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void Step(const std::vector<Param>& params) override;

 private:
  double momentum_;
  double weight_decay_;
  std::unordered_map<Tensor*, Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba) with optional decoupled weight decay.
/// The optimizer used for the Borghesi-flame model in the paper.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void Step(const std::vector<Param>& params) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<Tensor*, Tensor> m_;
  std::unordered_map<Tensor*, Tensor> v_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_OPTIMIZER_H_
