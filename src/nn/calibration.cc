#include "nn/calibration.h"

#include <atomic>

namespace errorflow {
namespace nn {

namespace {
std::atomic<CalibrationObserver*> g_observer{nullptr};
}  // namespace

CalibrationObserver* SetCalibrationObserver(CalibrationObserver* observer) {
  return g_observer.exchange(observer, std::memory_order_acq_rel);
}

CalibrationObserver* GetCalibrationObserver() {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace nn
}  // namespace errorflow
