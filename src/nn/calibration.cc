#include "nn/calibration.h"

namespace errorflow {
namespace nn {

namespace {
// Thread-local on purpose: calibration instruments exactly the Forward
// calls the installing thread makes. A process-global slot would leak the
// observer into concurrent serving Forwards on other threads (racing the
// collector's accumulation state) and let two overlapping calibrations
// interleave their install/restore pairs, leaving a dangling pointer
// behind — both real hazards when the registry materializes data-driven
// variants on scheduler workers.
thread_local CalibrationObserver* t_observer = nullptr;
}  // namespace

CalibrationObserver* SetCalibrationObserver(CalibrationObserver* observer) {
  CalibrationObserver* prev = t_observer;
  t_observer = observer;
  return prev;
}

CalibrationObserver* GetCalibrationObserver() {
  return t_observer;
}

}  // namespace nn
}  // namespace errorflow
