#ifndef ERRORFLOW_NN_CALIBRATION_H_
#define ERRORFLOW_NN_CALIBRATION_H_

#include <cstdint>

namespace errorflow {
namespace nn {

class Layer;

/// \brief Observer of the exact matrices linear layers feed their GEMMs,
/// used by calibration-based quantizers (src/quant/optq.h) to accumulate
/// per-layer input Grams without re-implementing the forward pass.
///
/// DenseLayer reports its input batch: `data` is row-major (n, d) with
/// features in columns (`features_are_rows == false`, d = in_features).
/// Conv2dLayer reports the batched im2col column matrix its GEMM consumes:
/// row-major (d, n) with features in rows (`features_are_rows == true`,
/// d = in_channels * k * k, n = batch * oh * ow). In both layouts the
/// layer's input Gram is the d x d matrix summing outer products of the
/// feature vectors.
class CalibrationObserver {
 public:
  virtual ~CalibrationObserver() = default;
  virtual void OnLinearInput(const Layer* layer, const float* data,
                             int64_t d, int64_t n,
                             bool features_are_rows) = 0;
};

/// Installs a *thread-local* observer (nullptr clears); returns the
/// previous one. Calibration instruments only the Forward calls made by
/// the installing thread: install, run Forward on the calibration batch
/// on the same thread, restore. Forwards running concurrently on other
/// threads (live serving batches, a second calibration) never see this
/// observer, so calibrating on a scheduler worker while peers serve
/// traffic is safe by construction. Layers invoke the observer from the
/// thread that called Forward — internal kernel parallelism never
/// re-enters it. The inference hot path pays one thread-local load when
/// no observer is installed.
CalibrationObserver* SetCalibrationObserver(CalibrationObserver* observer);

/// The observer installed on the calling thread, or nullptr.
CalibrationObserver* GetCalibrationObserver();

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_CALIBRATION_H_
