#ifndef ERRORFLOW_NN_CALIBRATION_H_
#define ERRORFLOW_NN_CALIBRATION_H_

#include <cstdint>

namespace errorflow {
namespace nn {

class Layer;

/// \brief Observer of the exact matrices linear layers feed their GEMMs,
/// used by calibration-based quantizers (src/quant/optq.h) to accumulate
/// per-layer input Grams without re-implementing the forward pass.
///
/// DenseLayer reports its input batch: `data` is row-major (n, d) with
/// features in columns (`features_are_rows == false`, d = in_features).
/// Conv2dLayer reports the batched im2col column matrix its GEMM consumes:
/// row-major (d, n) with features in rows (`features_are_rows == true`,
/// d = in_channels * k * k, n = batch * oh * ow). In both layouts the
/// layer's input Gram is the d x d matrix summing outer products of the
/// feature vectors.
class CalibrationObserver {
 public:
  virtual ~CalibrationObserver() = default;
  virtual void OnLinearInput(const Layer* layer, const float* data,
                             int64_t d, int64_t n,
                             bool features_are_rows) = 0;
};

/// Installs a process-global observer (nullptr clears); returns the
/// previous one. Calibration is a single-threaded offline pass: install,
/// run Forward on the calibration batch, clear. The observer must not be
/// swapped while any Forward is in flight. The inference hot path pays one
/// relaxed atomic load when no observer is installed.
CalibrationObserver* SetCalibrationObserver(CalibrationObserver* observer);

/// The currently installed observer, or nullptr.
CalibrationObserver* GetCalibrationObserver();

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_CALIBRATION_H_
