#ifndef ERRORFLOW_NN_SERIALIZE_H_
#define ERRORFLOW_NN_SERIALIZE_H_

#include <string>

#include "nn/model.h"
#include "util/result.h"

namespace errorflow {
namespace nn {

/// \brief Serializes a model — architecture and weights — into a compact
/// binary buffer ("EFM1" format). PSN layers are stored with their raw
/// weights and alpha so training can resume; call Model::FoldPsn() first if
/// you want plain inference weights on disk.
std::string SerializeModel(const Model& model);

/// \brief Reconstructs a model from a buffer produced by SerializeModel.
Result<Model> DeserializeModel(const std::string& buffer);

/// Writes SerializeModel output to `path`.
Status SaveModel(const Model& model, const std::string& path);

/// Reads a model from `path`.
Result<Model> LoadModel(const std::string& path);

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_SERIALIZE_H_
