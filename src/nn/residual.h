#ifndef ERRORFLOW_NN_RESIDUAL_H_
#define ERRORFLOW_NN_RESIDUAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace errorflow {
namespace nn {

/// \brief ResNet building block `y = F(x, {W_l}) + W_s x` (Eq. 1).
///
/// The body `F` is an arbitrary sequence of layers. The shortcut is either
/// the identity (when input/output shapes match) or a projection layer
/// (1x1 conv or dense). An optional post-activation is applied to the sum,
/// as in standard ResNets; activations are 1-Lipschitz, so the error-flow
/// analysis of Eq. (3) applies unchanged.
class ResidualBlock : public Layer {
 public:
  /// `shortcut` may be null for an identity skip connection.
  ResidualBlock(std::vector<std::unique_ptr<Layer>> body,
                std::unique_ptr<Layer> shortcut,
                std::unique_ptr<Layer> post_activation);

  LayerKind kind() const override { return LayerKind::kResidualBlock; }
  std::string ToString() const override;

  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::vector<Param> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

  const std::vector<std::unique_ptr<Layer>>& body() const { return body_; }
  std::vector<std::unique_ptr<Layer>>& mutable_body() { return body_; }
  /// Null for identity shortcuts.
  const Layer* shortcut() const { return shortcut_.get(); }
  Layer* mutable_shortcut() { return shortcut_.get(); }
  bool has_projection() const { return shortcut_ != nullptr; }
  /// Null when the block applies no activation after the addition.
  const Layer* post_activation() const { return post_activation_.get(); }

 private:
  std::vector<std::unique_ptr<Layer>> body_;
  std::unique_ptr<Layer> shortcut_;
  std::unique_ptr<Layer> post_activation_;

  // Forward caches: activations between body layers (training only —
  // inference Forward keeps all intermediates on the stack so concurrent
  // execution on a shared block is safe).
  std::vector<Tensor> acts_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_RESIDUAL_H_
