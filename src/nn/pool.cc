#include "nn/pool.h"

#include <cstring>

#include "tensor/kernels.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

// Allocation-free rank-4 shape test (a Shape temporary would heap-allocate
// on every Forward, breaking the steady-state zero-allocation contract).
bool ShapeIs4(const Tensor& t, int64_t d0, int64_t d1, int64_t d2,
              int64_t d3) {
  return t.ndim() == 4 && t.dim(0) == d0 && t.dim(1) == d1 &&
         t.dim(2) == d2 && t.dim(3) == d3;
}

bool ShapeIs2(const Tensor& t, int64_t d0, int64_t d1) {
  return t.ndim() == 2 && t.dim(0) == d0 && t.dim(1) == d1;
}

// Runs body(plane_begin, plane_end) over n*c planes, fanned out on the
// shared kernel pool when `flops` crosses the threading threshold. Each
// plane is written by exactly one chunk, so threaded output is
// bit-identical to a serial run.
template <typename Body>
void ForEachPlane(int64_t planes, int64_t flops, const Body& body) {
  if (!tensor::KernelWillParallelize(flops)) {
    body(int64_t{0}, planes);
    return;
  }
  tensor::ParallelChunksKernel(
      planes, flops,
      [&body](int64_t p0, int64_t p1) { body(p0, p1); });
}

}  // namespace

AvgPool2dLayer::AvgPool2dLayer(int window) : window_(window) {
  EF_CHECK(window >= 1);
}

std::string AvgPool2dLayer::ToString() const {
  return util::StrFormat("AvgPool2d(%d)", window_);
}

void AvgPool2dLayer::Forward(const Tensor& input, Tensor* output,
                             bool training) {
  EF_CHECK(input.ndim() == 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t oh = h / window_, ow = w / window_;
  EF_CHECK(oh > 0 && ow > 0);
  if (!ShapeIs4(*output, n, c, oh, ow)) {
    *output = Tensor({n, c, oh, ow});
  }
  const int win = window_;
  const float inv = 1.0f / static_cast<float>(win * win);
  const float* in = input.data();
  float* out = output->data();
  // One add per input element: n*c*h*w flops per pass.
  ForEachPlane(n * c, n * c * h * w, [=](int64_t p0, int64_t p1) {
    for (int64_t plane = p0; plane < p1; ++plane) {
      const float* src = in + plane * h * w;
      float* dst = out + plane * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        const float* rows = src + oy * win * w;
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float* win0 = rows + ox * win;
          float acc = 0.0f;
          // Same ky/kx accumulation order as the scalar seed path so the
          // rewrite is bit-identical.
          for (int ky = 0; ky < win; ++ky) {
            const float* row = win0 + ky * w;
            for (int kx = 0; kx < win; ++kx) acc += row[kx];
          }
          dst[oy * ow + ox] = acc * inv;
        }
      }
    }
  });
  if (training) cached_input_shape_ = input.shape();
}

void AvgPool2dLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  const Shape& in_shape = cached_input_shape_;
  if (grad_input->shape() != in_shape) *grad_input = Tensor(in_shape);
  const int64_t n = in_shape[0], c = in_shape[1], h = in_shape[2],
                w = in_shape[3];
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const int win = window_;
  const float inv = 1.0f / static_cast<float>(win * win);
  const float* go = grad_output.data();
  float* gi = grad_input->data();
  ForEachPlane(n * c, n * c * h * w, [=](int64_t p0, int64_t p1) {
    for (int64_t plane = p0; plane < p1; ++plane) {
      const float* src = go + plane * oh * ow;
      float* dst = gi + plane * h * w;
      // Each chunk zeroes the planes it owns, so threading stays
      // bit-identical and grad_input needs no global Fill.
      std::memset(dst, 0, static_cast<size_t>(h) * w * sizeof(float));
      for (int64_t oy = 0; oy < oh; ++oy) {
        float* rows = dst + oy * win * w;
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = src[oy * ow + ox] * inv;
          float* win0 = rows + ox * win;
          for (int ky = 0; ky < win; ++ky) {
            float* row = win0 + ky * w;
            for (int kx = 0; kx < win; ++kx) row[kx] += g;
          }
        }
      }
    }
  });
}

std::unique_ptr<Layer> AvgPool2dLayer::Clone() const {
  return std::make_unique<AvgPool2dLayer>(window_);
}

Shape AvgPool2dLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() == 4);
  return {s[0], s[1], s[2] / window_, s[3] / window_};
}

void GlobalAvgPoolLayer::Forward(const Tensor& input, Tensor* output,
                                 bool training) {
  EF_CHECK(input.ndim() == 4);
  const int64_t n = input.dim(0), c = input.dim(1),
                hw = input.dim(2) * input.dim(3);
  if (!ShapeIs2(*output, n, c)) *output = Tensor({n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  const float* in = input.data();
  float* out = output->data();
  ForEachPlane(n * c, n * c * hw, [=](int64_t p0, int64_t p1) {
    for (int64_t plane = p0; plane < p1; ++plane) {
      const float* src = in + plane * hw;
      float acc = 0.0f;
      for (int64_t i = 0; i < hw; ++i) acc += src[i];
      out[plane] = acc * inv;
    }
  });
  if (training) cached_input_shape_ = input.shape();
}

void GlobalAvgPoolLayer::Backward(const Tensor& grad_output,
                                  Tensor* grad_input) {
  const Shape& in_shape = cached_input_shape_;
  if (grad_input->shape() != in_shape) *grad_input = Tensor(in_shape);
  const int64_t n = in_shape[0], c = in_shape[1],
                hw = in_shape[2] * in_shape[3];
  const float inv = 1.0f / static_cast<float>(hw);
  const float* go = grad_output.data();
  float* gi = grad_input->data();
  ForEachPlane(n * c, n * c * hw, [=](int64_t p0, int64_t p1) {
    for (int64_t plane = p0; plane < p1; ++plane) {
      const float g = go[plane] * inv;
      float* dst = gi + plane * hw;
      for (int64_t i = 0; i < hw; ++i) dst[i] = g;
    }
  });
}

std::unique_ptr<Layer> GlobalAvgPoolLayer::Clone() const {
  return std::make_unique<GlobalAvgPoolLayer>();
}

Shape GlobalAvgPoolLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() == 4);
  return {s[0], s[1]};
}

void FlattenLayer::Forward(const Tensor& input, Tensor* output,
                           bool training) {
  EF_CHECK(input.ndim() >= 2);
  const int64_t n = input.dim(0);
  const int64_t features = input.size() / n;
  *output = Tensor({n, features}, input.values());
  if (training) cached_input_shape_ = input.shape();
}

void FlattenLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  *grad_input = Tensor(cached_input_shape_, grad_output.values());
}

std::unique_ptr<Layer> FlattenLayer::Clone() const {
  return std::make_unique<FlattenLayer>();
}

Shape FlattenLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() >= 2);
  int64_t features = 1;
  for (size_t i = 1; i < s.size(); ++i) features *= s[i];
  return {s[0], features};
}

}  // namespace nn
}  // namespace errorflow
