#include "nn/pool.h"

#include "util/string_util.h"

namespace errorflow {
namespace nn {

AvgPool2dLayer::AvgPool2dLayer(int window) : window_(window) {
  EF_CHECK(window >= 1);
}

std::string AvgPool2dLayer::ToString() const {
  return util::StrFormat("AvgPool2d(%d)", window_);
}

void AvgPool2dLayer::Forward(const Tensor& input, Tensor* output,
                             bool training) {
  EF_CHECK(input.ndim() == 4);
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                w = input.dim(3);
  const int64_t oh = h / window_, ow = w / window_;
  EF_CHECK(oh > 0 && ow > 0);
  if (output->shape() != Shape{n, c, oh, ow}) {
    *output = Tensor({n, c, oh, ow});
  }
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int ky = 0; ky < window_; ++ky) {
            for (int kx = 0; kx < window_; ++kx) {
              acc += input.at4(s, ch, oy * window_ + ky, ox * window_ + kx);
            }
          }
          output->at4(s, ch, oy, ox) = acc * inv;
        }
      }
    }
  }
  if (training) cached_input_shape_ = input.shape();
}

void AvgPool2dLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  const Shape& in_shape = cached_input_shape_;
  if (grad_input->shape() != in_shape) *grad_input = Tensor(in_shape);
  grad_input->Fill(0.0f);
  const int64_t n = in_shape[0], c = in_shape[1];
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = grad_output.at4(s, ch, oy, ox) * inv;
          for (int ky = 0; ky < window_; ++ky) {
            for (int kx = 0; kx < window_; ++kx) {
              grad_input->at4(s, ch, oy * window_ + ky, ox * window_ + kx) +=
                  g;
            }
          }
        }
      }
    }
  }
}

std::unique_ptr<Layer> AvgPool2dLayer::Clone() const {
  return std::make_unique<AvgPool2dLayer>(window_);
}

Shape AvgPool2dLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() == 4);
  return {s[0], s[1], s[2] / window_, s[3] / window_};
}

void GlobalAvgPoolLayer::Forward(const Tensor& input, Tensor* output,
                                 bool training) {
  EF_CHECK(input.ndim() == 4);
  const int64_t n = input.dim(0), c = input.dim(1),
                hw = input.dim(2) * input.dim(3);
  if (output->shape() != Shape{n, c}) *output = Tensor({n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (s * c + ch) * hw;
      float acc = 0.0f;
      for (int64_t i = 0; i < hw; ++i) acc += plane[i];
      output->at(s, ch) = acc * inv;
    }
  }
  if (training) cached_input_shape_ = input.shape();
}

void GlobalAvgPoolLayer::Backward(const Tensor& grad_output,
                                  Tensor* grad_input) {
  const Shape& in_shape = cached_input_shape_;
  if (grad_input->shape() != in_shape) *grad_input = Tensor(in_shape);
  const int64_t n = in_shape[0], c = in_shape[1],
                hw = in_shape[2] * in_shape[3];
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t s = 0; s < n; ++s) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(s, ch) * inv;
      float* plane = grad_input->data() + (s * c + ch) * hw;
      for (int64_t i = 0; i < hw; ++i) plane[i] = g;
    }
  }
}

std::unique_ptr<Layer> GlobalAvgPoolLayer::Clone() const {
  return std::make_unique<GlobalAvgPoolLayer>();
}

Shape GlobalAvgPoolLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() == 4);
  return {s[0], s[1]};
}

void FlattenLayer::Forward(const Tensor& input, Tensor* output,
                           bool training) {
  EF_CHECK(input.ndim() >= 2);
  const int64_t n = input.dim(0);
  const int64_t features = input.size() / n;
  *output = Tensor({n, features}, input.values());
  if (training) cached_input_shape_ = input.shape();
}

void FlattenLayer::Backward(const Tensor& grad_output, Tensor* grad_input) {
  *grad_input = Tensor(cached_input_shape_, grad_output.values());
}

std::unique_ptr<Layer> FlattenLayer::Clone() const {
  return std::make_unique<FlattenLayer>();
}

Shape FlattenLayer::OutputShape(const Shape& s) const {
  EF_CHECK(s.size() >= 2);
  int64_t features = 1;
  for (size_t i = 1; i < s.size(); ++i) features *= s[i];
  return {s[0], features};
}

}  // namespace nn
}  // namespace errorflow
