#include "nn/spectral.h"

#include <cmath>

#include "obs/metrics.h"
#include "tensor/norms.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace errorflow {
namespace nn {

using tensor::Tensor;

namespace {

// Counts PowerIteration / PowerIterationOp invocations process-wide. The
// serving path asserts this stays flat across requests: spectral estimates
// are paid once at registration (profiling + PSN fold), never per-request.
obs::Counter* PowerIterationCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "errorflow.spectral.power_iterations");
  return counter;
}

// Normalizes `t` to unit L2 norm in place; returns the prior norm.
double NormalizeL2(Tensor* t) {
  const double n = tensor::L2Norm(*t);
  if (n > 0.0) {
    const float inv = static_cast<float>(1.0 / n);
    for (int64_t i = 0; i < t->size(); ++i) (*t)[i] *= inv;
  }
  return n;
}

void RandomUnit(Tensor* t, uint64_t seed) {
  util::Rng rng(seed);
  for (int64_t i = 0; i < t->size(); ++i) {
    (*t)[i] = static_cast<float>(rng.Normal());
  }
  NormalizeL2(t);
}

}  // namespace

SpectralEstimate PowerIteration(const Tensor& w, int max_iters, double tol,
                                uint64_t seed, const Tensor* warm_v) {
  EF_CHECK(w.ndim() == 2);
  PowerIterationCounter()->Increment();
  const int64_t m = w.dim(0), n = w.dim(1);
  SpectralEstimate est;
  est.u = Tensor({m});
  est.v = Tensor({n});
  if (m == 0 || n == 0) return est;

  if (warm_v != nullptr && warm_v->size() == n) {
    est.v = *warm_v;
    if (tensor::L2Norm(est.v) <= 0.0) RandomUnit(&est.v, seed);
  } else {
    RandomUnit(&est.v, seed);
  }

  double sigma = 0.0, prev = -1.0;
  Tensor tmp_u({m}), tmp_v({n});
  for (int it = 0; it < max_iters; ++it) {
    tensor::Gemv(w, est.v, &tmp_u);       // u <- W v
    sigma = NormalizeL2(&tmp_u);
    est.u = tmp_u;
    tensor::GemvT(w, est.u, &tmp_v);      // v <- W^T u
    NormalizeL2(&tmp_v);
    est.v = tmp_v;
    est.iterations = it + 1;
    if (prev >= 0.0 && std::fabs(sigma - prev) <= tol * std::max(1.0, sigma)) {
      break;
    }
    prev = sigma;
  }
  // One final accurate Rayleigh quotient: sigma = ||W v||.
  tensor::Gemv(w, est.v, &tmp_u);
  est.sigma = tensor::L2Norm(tmp_u);
  if (est.sigma > 0.0) {
    est.u = tmp_u;
    NormalizeL2(&est.u);
  }
  return est;
}

SpectralEstimate PowerIterationOp(
    const std::function<void(const Tensor&, Tensor*)>& fwd,
    const std::function<void(const Tensor&, Tensor*)>& tr, int64_t n_in,
    int max_iters, double tol, uint64_t seed) {
  PowerIterationCounter()->Increment();
  SpectralEstimate est;
  Tensor v({n_in});
  RandomUnit(&v, seed);
  Tensor u, back;
  double sigma = 0.0, prev = -1.0;
  for (int it = 0; it < max_iters; ++it) {
    fwd(v, &u);
    sigma = NormalizeL2(&u);
    tr(u, &back);
    NormalizeL2(&back);
    v = back;
    est.iterations = it + 1;
    if (prev >= 0.0 && std::fabs(sigma - prev) <= tol * std::max(1.0, sigma)) {
      break;
    }
    prev = sigma;
  }
  fwd(v, &u);
  est.sigma = tensor::L2Norm(u);
  NormalizeL2(&u);
  est.u = u;
  est.v = v;
  return est;
}

}  // namespace nn
}  // namespace errorflow
