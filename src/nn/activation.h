#ifndef ERRORFLOW_NN_ACTIVATION_H_
#define ERRORFLOW_NN_ACTIVATION_H_

#include <memory>
#include <string>

#include "nn/layer.h"

namespace errorflow {
namespace nn {

/// \brief Supported nonlinearities.
///
/// All of these have first derivative globally bounded by 1 (the constant C
/// of Sec. III-A), which the error-flow analysis relies on. PReLU keeps its
/// learnable slope clamped to [0, 1] for the same reason.
enum class ActivationKind {
  kReLU,
  kLeakyReLU,
  kPReLU,
  kTanh,
  kGeLU,
  kIdentity,
};

const char* ActivationKindToString(ActivationKind kind);

/// \brief Upper bound on |phi'(z)| over all z for the given activation.
/// Returns 1.0 for every supported kind (GeLU's derivative peaks at ~1.13;
/// we report that exact constant so bounds remain safe).
double ActivationDerivativeBound(ActivationKind kind);

/// \brief Elementwise activation layer.
///
/// PReLU carries one learnable slope shared across the layer (clamped to
/// [0,1] after each optimizer step by the trainer so that C = 1 holds).
class ActivationLayer : public Layer {
 public:
  explicit ActivationLayer(ActivationKind kind, float leaky_slope = 0.01f);

  LayerKind kind() const override { return LayerKind::kActivation; }
  ActivationKind activation_kind() const { return kind_; }
  std::string ToString() const override;

  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::vector<Param> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override {
    return input_shape;
  }

  /// Learnable PReLU slope (fixed slope for LeakyReLU).
  float slope() const { return slope_[0]; }
  /// Clamps the PReLU slope into [0, 1]; called by the trainer after steps.
  void ClampSlope();

 private:
  ActivationKind kind_;
  Tensor slope_;       // 1-element tensor (PReLU learnable / leaky fixed).
  Tensor slope_grad_;  // gradient accumulator for PReLU.
  Tensor cached_input_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_ACTIVATION_H_
