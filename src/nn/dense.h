#ifndef ERRORFLOW_NN_DENSE_H_
#define ERRORFLOW_NN_DENSE_H_

#include <memory>
#include <mutex>
#include <string>

#include "nn/layer.h"
#include "nn/spectral.h"

namespace errorflow {
namespace nn {

/// \brief Fully connected layer `z = x W^T + b` with optional
/// parameterized spectral normalization (PSN, Eq. 6 of the paper).
///
/// With PSN enabled the effective weight is
///   W_eff = (alpha / sigma(W)) * W
/// so the layer's spectral norm equals the learnable scalar `alpha` exactly;
/// the learnable shift beta of Eq. 6 is realized by the bias vector. The
/// stored parameter W is free-scale; sigma(W) is tracked by warm-started
/// power iteration refreshed on every training forward pass.
///
/// After training, `FoldPsn()` bakes the normalization into the weight so
/// that downstream consumers (quantizer, error-flow profiler, serializer)
/// see one plain weight matrix.
class DenseLayer : public Layer {
 public:
  /// Creates a layer with uninitialized (zero) weights; call InitXavier or
  /// load weights before use.
  DenseLayer(int64_t in_features, int64_t out_features, bool use_psn = false);

  LayerKind kind() const override { return LayerKind::kDense; }
  std::string ToString() const override;

  /// Xavier/Glorot-uniform weight init; zero bias; alpha starts at the
  /// resulting spectral norm so PSN is initially a no-op.
  void InitXavier(uint64_t seed);

  void Forward(const Tensor& input, Tensor* output, bool training) override;
  void Backward(const Tensor& grad_output, Tensor* grad_input) override;
  std::vector<Param> Params() override;
  std::unique_ptr<Layer> Clone() const override;
  Shape OutputShape(const Shape& input_shape) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool use_psn() const { return use_psn_; }

  /// Stored (raw) weight matrix, shape (out, in).
  const Tensor& weight() const { return weight_; }
  Tensor& mutable_weight() { return weight_; }
  const Tensor& bias() const { return bias_; }
  Tensor& mutable_bias() { return bias_; }
  /// PSN scale (meaningful only when use_psn()).
  float alpha() const { return alpha_[0]; }
  void set_alpha(float a) { alpha_[0] = a; }

  /// The weight actually applied in the forward pass: W itself, or the
  /// PSN-normalized (alpha/sigma) * W (sigma refreshed exactly).
  ///
  /// Without PSN this is a zero-copy reference to weight() — the serving
  /// hot path (PSN folded) never allocates here. Under PSN the reference
  /// points at an internal cache that the *next* EffectiveWeight call
  /// overwrites, so on an unfolded layer it is single-threaded API:
  /// concurrent paths (Forward, SpectralNorm, FoldPsn) snapshot internally
  /// under the layer mutex instead of reading this reference.
  const Tensor& EffectiveWeight() const;

  /// Replaces W by EffectiveWeight() and disables PSN. Idempotent.
  void FoldPsn();

  /// Spectral norm of the effective weight (== alpha under PSN).
  double SpectralNorm() const;

 private:
  /// Refreshes sigma_ via warm-started power iteration (`iters` steps).
  /// Caller holds spec_mu_.
  void RefreshSigmaLocked(int iters) const;

  /// Thread-safe snapshot of the PSN-normalized weight (use_psn_ only):
  /// refreshes sigma and returns (alpha/sigma) * W as a fresh tensor.
  Tensor PsnSnapshot(int refresh_iters_warm, int refresh_iters_cold) const;

  int64_t in_features_;
  int64_t out_features_;
  bool use_psn_;

  Tensor weight_;  // (out, in)
  Tensor bias_;    // (out)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor alpha_;       // 1-element PSN scale.
  Tensor alpha_grad_;  // 1-element.

  // Power-iteration cache for sigma(W), refreshed lazily from const
  // accessors. spec_mu_ guards spec_, spec_valid_, and eff_cache_ so
  // concurrent Forward / SpectralNorm calls on one layer instance (e.g.
  // serve::BatchScheduler workers sharing a model variant) are safe.
  mutable std::mutex spec_mu_;
  mutable SpectralEstimate spec_;
  mutable bool spec_valid_ = false;
  // PSN-normalized weight returned by reference from EffectiveWeight().
  mutable Tensor eff_cache_;

  // Forward caches for backward (training path; cached_eff_weight_ is
  // only populated under PSN — without PSN, backward reads weight_).
  Tensor cached_input_;
  Tensor cached_eff_weight_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_DENSE_H_
