#ifndef ERRORFLOW_NN_MODEL_H_
#define ERRORFLOW_NN_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace errorflow {
namespace nn {

/// \brief A feed-forward model: a sequence of layers (any of which may be a
/// ResidualBlock, giving ResNets).
///
/// The model owns its layers. It is the unit that the trainer optimizes,
/// the quantizer copies-and-rounds, and the error-flow profiler walks.
class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  // Movable, not copyable (use Clone()).
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer; returns a raw observer pointer for convenience.
  Layer* Add(std::unique_ptr<Layer> layer);

  const std::vector<std::unique_ptr<Layer>>& layers() const {
    return layers_;
  }
  std::vector<std::unique_ptr<Layer>>& mutable_layers() { return layers_; }

  /// Runs the model on a batch. `training=true` caches activations for a
  /// subsequent Backward.
  void Forward(const Tensor& input, Tensor* output, bool training = false);

  /// Convenience inference wrapper.
  Tensor Predict(const Tensor& input);

  /// Backpropagates from the loss gradient w.r.t. the output, accumulating
  /// parameter gradients. `grad_input` may be null when unneeded.
  void Backward(const Tensor& grad_output, Tensor* grad_input = nullptr);

  /// All trainable parameters, in layer order.
  std::vector<Param> Params();

  /// Zeroes all gradients.
  void ZeroGrads();

  /// Total number of trainable scalars.
  int64_t ParameterCount();

  /// Deep copy (weights included).
  Model Clone() const;

  /// Bakes parameterized spectral normalization into plain weights in every
  /// Dense/Conv layer (recursing into residual blocks). Call after training,
  /// before profiling/quantization/serialization.
  void FoldPsn();

  /// Applies `fn` to every layer, recursing into residual blocks
  /// (body, shortcut, post-activation).
  void VisitLayers(const std::function<void(Layer*)>& fn);
  void VisitLayers(const std::function<void(const Layer*)>& fn) const;

  /// Multiply-accumulate count of one forward pass for a single sample with
  /// the given input shape (batch forced to 1). Used by the hardware model.
  int64_t FlopsPerSample(const Shape& single_input_shape) const;

  /// Output shape for a given input shape.
  Shape OutputShape(const Shape& input_shape) const;

  /// Human-readable multi-line architecture summary.
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_MODEL_H_
