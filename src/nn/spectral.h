#ifndef ERRORFLOW_NN_SPECTRAL_H_
#define ERRORFLOW_NN_SPECTRAL_H_

#include <cstdint>
#include <functional>

#include "tensor/tensor.h"

namespace errorflow {
namespace nn {

/// \brief Result of a power-iteration spectral-norm estimate (Eq. 2).
struct SpectralEstimate {
  /// Largest singular value estimate.
  double sigma = 0.0;
  /// Left singular vector (length m).
  tensor::Tensor u;
  /// Right singular vector (length n).
  tensor::Tensor v;
  /// Iterations actually performed.
  int iterations = 0;
};

/// \brief Estimates the spectral norm (largest singular value) of a rank-2
/// matrix via power iteration on W^T W.
///
/// `warm_v`, if non-null and correctly sized, seeds the iteration (used by
/// PSN layers to warm-start across training steps, after which one or two
/// iterations suffice).
SpectralEstimate PowerIteration(const tensor::Tensor& w, int max_iters = 200,
                                double tol = 1e-9, uint64_t seed = 42,
                                const tensor::Tensor* warm_v = nullptr);

/// \brief Power iteration over an arbitrary linear operator given as a
/// forward map (R^n -> R^m) and its transpose (R^m -> R^n).
///
/// Used to measure the true operator norm of convolution layers, where the
/// linearized matrix is too large to materialize.
SpectralEstimate PowerIterationOp(
    const std::function<void(const tensor::Tensor&, tensor::Tensor*)>& fwd,
    const std::function<void(const tensor::Tensor&, tensor::Tensor*)>& tr,
    int64_t n_in, int max_iters = 100, double tol = 1e-7, uint64_t seed = 42);

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_SPECTRAL_H_
