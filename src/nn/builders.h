#ifndef ERRORFLOW_NN_BUILDERS_H_
#define ERRORFLOW_NN_BUILDERS_H_

#include <string>
#include <vector>

#include "nn/activation.h"
#include "nn/model.h"

namespace errorflow {
namespace nn {

/// \brief Configuration for a multi-layer perceptron.
///
/// MLPs are the paper's combustion surrogates: H2Combustion uses two hidden
/// layers of 50 neurons (9 -> 50 -> 50 -> 9); BorghesiFlame uses eight
/// hidden layers (13 -> ... -> 3).
struct MlpConfig {
  std::string name = "mlp";
  int64_t input_dim = 0;
  std::vector<int64_t> hidden_dims;
  int64_t output_dim = 0;
  ActivationKind activation = ActivationKind::kTanh;
  /// Enables parameterized spectral normalization on every dense layer.
  bool use_psn = false;
  uint64_t seed = 1;
};

/// Builds an MLP: Dense/activation pairs with a linear output layer.
Model BuildMlp(const MlpConfig& config);

/// \brief Configuration for a CIFAR-stem ResNet.
///
/// The default (3 stages x 2 blocks) is the scaled-down ResNet18 used for
/// the EuroSAT-style task; see DESIGN.md for the 224^2 -> 32^2 substitution.
struct ResNetConfig {
  std::string name = "resnet";
  int64_t in_channels = 3;
  int64_t num_classes = 10;
  /// Channels per stage; the first conv maps in_channels to
  /// stage_channels[0].
  std::vector<int64_t> stage_channels = {16, 32, 64};
  /// Residual blocks per stage. {2,2,2} mirrors ResNet18's per-stage depth.
  std::vector<int> stage_blocks = {2, 2, 2};
  ActivationKind activation = ActivationKind::kReLU;
  bool use_psn = false;
  /// With PSN: initial alpha of the residual-branch convolutions
  /// (SkipInit-style). Blocks start near-identity (branch product
  /// alpha^2), which keeps the telescoped Eq. (3) gain small while the
  /// trunk signal is preserved; alpha grows during training where the
  /// task needs it. <= 0 disables the branch scaling (alpha = sigma).
  double psn_branch_alpha = 0.6;
  uint64_t seed = 1;
};

/// Builds a ResNet: 3x3 stem conv, stages of residual blocks (stride-2
/// downsampling between stages, 1x1 projection shortcuts), global average
/// pooling, and a dense classifier head.
Model BuildResNet(const ResNetConfig& config);

}  // namespace nn
}  // namespace errorflow

#endif  // ERRORFLOW_NN_BUILDERS_H_
