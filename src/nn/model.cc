#include "nn/model.h"

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/residual.h"
#include "util/string_util.h"

namespace errorflow {
namespace nn {

namespace {

void VisitRecursive(Layer* layer, const std::function<void(Layer*)>& fn) {
  fn(layer);
  if (auto* block = dynamic_cast<ResidualBlock*>(layer)) {
    for (auto& l : block->mutable_body()) VisitRecursive(l.get(), fn);
    if (block->mutable_shortcut() != nullptr) {
      VisitRecursive(block->mutable_shortcut(), fn);
    }
  }
}

// FLOPs (multiply-accumulates) for a single layer given its input shape;
// returns the output shape through `shape`.
int64_t LayerFlops(const Layer* layer, Shape* shape) {
  const Shape in = *shape;
  *shape = layer->OutputShape(in);
  if (const auto* d = dynamic_cast<const DenseLayer*>(layer)) {
    return d->in_features() * d->out_features();
  }
  if (const auto* c = dynamic_cast<const Conv2dLayer*>(layer)) {
    const Shape out = *shape;
    return out[1] * out[2] * out[3] * c->in_channels() * c->kernel() *
           c->kernel();
  }
  if (const auto* b = dynamic_cast<const ResidualBlock*>(layer)) {
    int64_t flops = 0;
    Shape s = in;
    for (const auto& l : b->body()) flops += LayerFlops(l.get(), &s);
    if (b->shortcut() != nullptr) {
      Shape ss = in;
      flops += LayerFlops(b->shortcut(), &ss);
    }
    return flops;
  }
  // Activations / pools: roughly one op per element; negligible next to
  // the matmuls but counted for completeness.
  int64_t n = 1;
  for (int64_t d : *shape) n *= d;
  return n;
}

}  // namespace

Layer* Model::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

void Model::Forward(const Tensor& input, Tensor* output, bool training) {
  EF_CHECK(!layers_.empty());
  Tensor cur = input;
  Tensor next;
  for (auto& layer : layers_) {
    layer->Forward(cur, &next, training);
    cur = std::move(next);
    next = Tensor();
  }
  *output = std::move(cur);
}

Tensor Model::Predict(const Tensor& input) {
  Tensor out;
  Forward(input, &out, /*training=*/false);
  return out;
}

void Model::Backward(const Tensor& grad_output, Tensor* grad_input) {
  Tensor g = grad_output, gprev;
  for (size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->Backward(g, &gprev);
    g = std::move(gprev);
    gprev = Tensor();
  }
  if (grad_input != nullptr) *grad_input = std::move(g);
}

std::vector<Param> Model::Params() {
  std::vector<Param> params;
  for (auto& layer : layers_) {
    for (Param& p : layer->Params()) params.push_back(p);
  }
  return params;
}

void Model::ZeroGrads() {
  for (Param& p : Params()) {
    if (p.grad != nullptr) p.grad->Fill(0.0f);
  }
}

int64_t Model::ParameterCount() {
  int64_t n = 0;
  for (const Param& p : Params()) n += p.value->size();
  return n;
}

Model Model::Clone() const {
  Model copy(name_);
  for (const auto& layer : layers_) copy.Add(layer->Clone());
  return copy;
}

void Model::FoldPsn() {
  VisitLayers([](Layer* layer) {
    if (auto* d = dynamic_cast<DenseLayer*>(layer)) d->FoldPsn();
    if (auto* c = dynamic_cast<Conv2dLayer*>(layer)) c->FoldPsn();
  });
}

void Model::VisitLayers(const std::function<void(Layer*)>& fn) {
  for (auto& layer : layers_) VisitRecursive(layer.get(), fn);
}

void Model::VisitLayers(const std::function<void(const Layer*)>& fn) const {
  auto* self = const_cast<Model*>(this);
  self->VisitLayers([&fn](Layer* l) { fn(l); });
}

int64_t Model::FlopsPerSample(const Shape& single_input_shape) const {
  Shape s = single_input_shape;
  if (!s.empty()) s[0] = 1;
  int64_t flops = 0;
  for (const auto& layer : layers_) flops += LayerFlops(layer.get(), &s);
  return flops;
}

Shape Model::OutputShape(const Shape& input_shape) const {
  Shape s = input_shape;
  for (const auto& layer : layers_) s = layer->OutputShape(s);
  return s;
}

std::string Model::Summary() const {
  std::string out = util::StrFormat("Model '%s':\n", name_.c_str());
  for (const auto& layer : layers_) {
    out += "  " + layer->ToString() + "\n";
  }
  return out;
}

}  // namespace nn
}  // namespace errorflow
