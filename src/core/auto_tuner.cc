#include "core/auto_tuner.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace errorflow {
namespace core {

Result<AutoTuneResult> AutoTune(const ErrorFlowAnalysis& analysis,
                                double qoi_tolerance,
                                const tensor::Tensor& sample_batch,
                                int64_t flops_per_sample,
                                int64_t bytes_per_sample,
                                const AutoTuneConfig& config) {
  if (sample_batch.ndim() < 2) {
    return Status::InvalidArgument("auto-tune: batch tensor required");
  }
  auto compressor = compress::MakeCompressor(config.backend, config.codec);
  if (!compressor->SupportsNorm(config.norm)) {
    return Status::InvalidArgument(
        "auto-tune: backend does not support the requested norm");
  }
  io::SimulatedStorage storage(config.storage);
  quant::ExecutionModel exec(config.hardware, flops_per_sample,
                             bytes_per_sample);
  const int64_t batch = sample_batch.dim(0);

  AutoTuneResult result;
  std::vector<NumericFormat> formats = {NumericFormat::kFP32};
  for (NumericFormat f : quant::ReducedFormats()) formats.push_back(f);

  obs::Counter* evaluations = obs::MetricsRegistry::Global().GetCounter(
      "errorflow.autotune.evaluations");
  for (NumericFormat format : formats) {
    obs::TraceSpan span(std::string("autotune.candidate.") +
                        quant::FormatToString(format));
    AutoTuneCandidate cand;
    cand.format = format;
    const double quant = analysis.QuantTerm(format);
    if (quant >= qoi_tolerance) {
      result.candidates.push_back(cand);  // Infeasible.
      continue;
    }
    evaluations->Increment();
    cand.feasible = true;
    cand.input_tolerance =
        analysis.MaxInputError(qoi_tolerance, config.norm, format);

    compress::ErrorBound eb;
    eb.norm = config.norm;
    eb.relative = false;
    eb.tolerance = cand.input_tolerance;
    EF_ASSIGN_OR_RETURN(compress::Compressed comp,
                        compressor->Compress(sample_batch, eb));
    cand.compression_ratio = comp.ratio();
    EF_ASSIGN_OR_RETURN(compress::Decompressed dec,
                        compressor->Decompress(comp.blob));
    const double read_s =
        storage.ModelReadSeconds(static_cast<int64_t>(comp.blob.size()));
    const double dec_s =
        dec.seconds / std::max(1.0, config.storage.decompress_parallelism);
    const double bytes = static_cast<double>(comp.original_bytes);
    cand.io_throughput = bytes / std::max(1e-12, read_s + dec_s);
    cand.exec_throughput =
        bytes / std::max(1e-12, exec.SecondsPerSample(format) *
                                    static_cast<double>(batch));
    cand.total_throughput =
        std::min(cand.io_throughput, cand.exec_throughput);
    result.candidates.push_back(cand);
    if (cand.total_throughput > result.best.total_throughput) {
      result.best = cand;
    }
  }
  if (!result.best.feasible) {
    return Status::FailedPrecondition(
        "auto-tune: no format admissible under the tolerance");
  }
  return result;
}

}  // namespace core
}  // namespace errorflow
