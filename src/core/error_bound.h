#ifndef ERRORFLOW_CORE_ERROR_BOUND_H_
#define ERRORFLOW_CORE_ERROR_BOUND_H_

#include <functional>
#include <vector>

#include "core/spectral_profile.h"
#include "quant/format.h"
#include "tensor/norms.h"

namespace errorflow {
namespace core {

using quant::NumericFormat;
using tensor::Norm;

/// \brief One linear layer's row in the error-budget ledger produced by
/// ErrorFlowAnalysis::Attribution(): where that layer's quantization noise
/// ends up in the composed bound, plus the spectral quantities that
/// amplified it.
struct LayerAttribution {
  /// Profile name of the layer.
  std::string layer;
  /// Traversal index, identical to the StepFn numbering (plain chains in
  /// network order; residual bodies first, then the projection shortcut).
  int64_t index = 0;
  /// Plain spectral norm sigma_l.
  double sigma = 0.0;
  /// Quantized proxy sigma~_l = sigma_l + q_l sqrt(min(n_in,n_out))/sqrt 3.
  double quantized_sigma = 0.0;
  /// Step size q_l under the attributed steps.
  double step_size = 0.0;
  /// Per-layer multiplicative amplification applied to anything flowing
  /// through this layer: sigma~_l * activation_gain.
  double amplification = 0.0;
  /// Exact additive share of the composed quantization term contributed by
  /// this layer's rounding noise, after amplification by every downstream
  /// layer. Shares over all layers sum to QuantTerm() (fp roundoff aside).
  double quant_share = 0.0;
};

/// \brief Exact per-source decomposition of the composed Eq. (3)/(5) bound:
/// the admission scalar as an inspectable ledger. The flow recursion is
/// linear in the error component, so the input-error term and each layer's
/// noise injection can be propagated separately; by construction
///
///     total == compression_term + sum_l layers[l].quant_share == Bound().
struct BoundAttribution {
  /// Input error after conversion to L2 (the norm the flow runs in).
  double input_err_l2 = 0.0;
  /// Composed amplification of the input error (Gain(format)).
  double gain = 0.0;
  /// gain * input_err_l2: the compression-input share of the bound.
  double compression_term = 0.0;
  /// Sum of the per-layer quantization shares (== QuantTerm()).
  double quant_term = 0.0;
  /// compression_term + quant_term (== Bound(input_err, norm, format)).
  double total = 0.0;
  /// One row per linear layer in traversal order.
  std::vector<LayerAttribution> layers;
};

/// \brief The paper's error-flow analysis (Sec. III): given a model's
/// spectral profile, predicts an upper bound on the QoI error when the
/// input carries a compression error and the weights are quantized.
///
/// The bound is affine in the input error:
///
///     ||Delta y|| <= Gain(format) * ||Delta x|| + QuantTerm(format)
///
/// computed by propagating a pair (E, H) through the network, where E
/// bounds the error norm and H bounds the activation norm of the noisy
/// network (H_0 = sqrt(n0), inputs normalized to [-1, 1]):
///
///   linear layer l:  E <- sigma~_l E + q_l sqrt(n_l) / (2 sqrt(3)) * H
///                    H <- sigma~_l H
///   activation:      E <- C E,  H <- C H
///   residual block:  (E, H) <- (E_body + E_shortcut, H_body + H_shortcut)
///
/// with sigma~_l = sigma_l + q_l sqrt(min(n_{l-1}, n_l)) / sqrt(3) the
/// pre-quantization proxy for the quantized weight's spectral norm, and
/// q_l the Table-I average step size. For a single residual block or MLP
/// this telescopes to exactly Inequality (3) of the paper (with sigma~
/// kept, conservatively, in the downstream products as well).
///
/// All bounds are computed in L2 and converted to Linf via the norm
/// equivalence of Sec. III-A.
class ErrorFlowAnalysis {
 public:
  explicit ErrorFlowAnalysis(ModelProfile profile);

  const ModelProfile& profile() const { return profile_; }

  /// Total amplification of the input error: sigma_s + prod sigma_l
  /// composed across blocks (the Eq. 5 compression gain). Uses quantized
  /// sigma proxies when `format != kFP32`.
  double Gain(NumericFormat format = NumericFormat::kFP32) const;

  /// The input-independent quantization term of the bound (L2, absolute,
  /// on normalized outputs).
  double QuantTerm(NumericFormat format) const;

  /// Upper bound on ||Delta y|| given ||Delta x||, both in `norm`.
  /// Linf input errors are converted via ||Dx||_2 <= sqrt(n0) ||Dx||_inf;
  /// the L2 output bound is itself a valid Linf bound.
  double Bound(double input_err, Norm norm, NumericFormat format) const;

  /// Per-feature variant: bounds |Delta y_k| by replacing the final
  /// layer's spectral norm with the L2 norm of its k-th row (requires the
  /// profile to expose final_row_norms).
  double PerFeatureBound(int64_t feature, double input_err, Norm norm,
                         NumericFormat format) const;

  /// Largest input error (in `norm`) whose predicted bound stays within
  /// `qoi_tolerance`; 0 when the quantization term alone exceeds it.
  double MaxInputError(double qoi_tolerance, Norm norm,
                       NumericFormat format) const;

  /// \name Custom per-layer quantization steps.
  ///
  /// Generalizes the format-based API for the paper's Sec.-VI extensions
  /// (grouped INT8, per-layer mixed precision): `step_fn(layer, index)`
  /// returns the average quantization step of linear layer `index` in
  /// traversal order — plain chains in network order; residual blocks
  /// contribute their body layers first, then the projection shortcut.
  /// @{
  using StepFn =
      std::function<double(const LayerProfile& layer, int64_t index)>;

  /// Number of linear layers in traversal order (shortcuts included).
  int64_t LinearLayerCount() const;

  /// Bound with custom steps; reduces to Bound() when step_fn returns the
  /// Table-I step of a fixed format.
  double BoundWithSteps(double input_err, Norm norm,
                        const StepFn& step_fn) const;

  /// Input-independent quantization term with custom steps.
  double QuantTermWithSteps(const StepFn& step_fn) const;
  /// @}

  /// \name Error-budget provenance.
  /// @{

  /// Per-layer decomposition of Bound(input_err, norm, format): each
  /// layer's exact additive share of the quantization term plus the
  /// compression-input term. See BoundAttribution for the invariants.
  BoundAttribution Attribution(double input_err, Norm norm,
                               NumericFormat format) const;

  /// Attribution under custom per-layer steps (mixed precision, grouped
  /// INT8); reduces to Attribution() for FormatStepFn(format).
  BoundAttribution AttributionWithSteps(double input_err, Norm norm,
                                        const StepFn& step_fn) const;
  /// @}

  /// \brief Quantization term when *activations* are quantized too
  /// (Sec. III-B's activation-quantization remark): weights rounded to
  /// `weight_format`, and the output of every top-level linear layer /
  /// residual block rounded to `act_format` (matching
  /// quant::PredictWithQuantizedActivations). Float formats inject a
  /// relative rounding error 2^-(m+1) * ||h||; INT8 injects
  /// ||h|| * sqrt(n) / 255 (max calibration).
  double QuantTermWithActivations(NumericFormat weight_format,
                                  NumericFormat act_format) const;

  /// Verbatim Inequality (3) for a model consisting of a single MLP chain
  /// or a single residual block — the exact printed formula, with plain
  /// sigma_j in the downstream products. Used to validate the recursion
  /// and by the paper-figure benches on the MLP tasks.
  /// Returns the L2 bound for an L2 input error.
  double Eq3BoundL2(double input_l2_err, NumericFormat format) const;

 private:
  struct FlowState {
    double error = 0.0;
    double act_norm = 0.0;
    /// Attribution tracking (empty in the common case): slot 0 is the
    /// input-error share, slot 1 + l is linear layer l's quantization
    /// share. Invariant whenever non-empty: error == sum(contribs).
    std::vector<double> contribs;
  };

  // Activation-rounding error injected after a linear layer or block
  // output with activation-norm bound `act_norm` and `n_out` elements.
  using ActInjectFn = std::function<double(double act_norm, int64_t n_out)>;

  // Propagates (E, H) through one block; `layer_counter` tracks the
  // traversal index handed to `step_fn`. `act_inject`, when non-null,
  // adds activation-rounding error after each plain-chain layer and after
  // each residual block's output.
  FlowState FlowBlock(const BlockProfile& block, FlowState in,
                      const StepFn& step_fn, int64_t* layer_counter,
                      double final_sigma_override, bool is_last_block,
                      const ActInjectFn* act_inject = nullptr) const;

  // Runs the full flow with the given initial state.
  FlowState Flow(FlowState state, const StepFn& step_fn,
                 double final_sigma_override,
                 const ActInjectFn* act_inject = nullptr) const;

  ModelProfile profile_;
};

/// StepFn for a fixed numerical format (the Table-I step of each layer).
ErrorFlowAnalysis::StepFn FormatStepFn(NumericFormat format);

/// StepFn from measured per-layer steps in traversal order (e.g. the
/// effective steps of a data-driven quantizer — quant::OptqEffectiveSteps).
/// The vector length must equal LinearLayerCount(); out-of-range indices
/// trip EF_CHECK inside the returned function.
ErrorFlowAnalysis::StepFn VectorStepFn(std::vector<double> steps);

/// Convenience: Table-I step size of a profiled layer under `format`.
double LayerStepSize(const LayerProfile& layer, NumericFormat format);

/// Quantized-spectral-norm proxy sigma~ = sigma + q sqrt(min(n_in, n_out))
/// / sqrt(3).
double QuantizedSigma(const LayerProfile& layer, NumericFormat format);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_ERROR_BOUND_H_
