#ifndef ERRORFLOW_CORE_SPECTRAL_PROFILE_H_
#define ERRORFLOW_CORE_SPECTRAL_PROFILE_H_

#include <string>
#include <vector>

#include "nn/model.h"
#include "tensor/tensor.h"

namespace errorflow {
namespace core {

/// \brief Spectral description of one linear (weight) layer as the
/// error-flow analysis sees it.
struct LayerProfile {
  std::string name;
  /// Operator norm of the layer's effective weight: the matrix spectral
  /// norm for dense layers, the true convolution operator norm (power
  /// iteration over conv/conv^T at the profiled spatial size) for conv.
  double sigma = 0.0;
  /// Flattened input/output element counts (n_{l-1}, n_l in the paper).
  int64_t n_in = 0;
  int64_t n_out = 0;
  /// Derivative bound C of the activation applied after this layer
  /// (1 for none/ReLU/Tanh/PReLU; 1.129 for GeLU).
  double activation_gain = 1.0;
  /// Copy of the weight tensor, used for Table-I step sizes.
  tensor::Tensor weight;
  /// sqrt-factor of the CLT quantization-noise term,
  /// ||DeltaW h|| <~ q * noise_sqrt / (2 sqrt 3) * ||h||.
  /// Dense: sqrt(n_out) (Eq. 3 verbatim). Conv: k * sqrt(out_channels) —
  /// each output element's noise inner product spans in_ch*k^2 shared
  /// weights, so the norm concentrates at k*sqrt(out_ch)*||h||, not
  /// sqrt(out_ch*oh*ow)*||h|| (our conv extension; the paper derives the
  /// dense case only).
  double noise_sqrt = 0.0;
  /// sqrt-factor of the quantized-spectral-norm proxy,
  /// sigma~ <= sigma + q * sigma_pert_sqrt / sqrt(3).
  /// Dense: sqrt(min(n_in, n_out)). Conv: k * sqrt(min(in_ch*k^2, out_ch))
  /// (operator norm of a conv is <= k * matrix norm of its kernel).
  double sigma_pert_sqrt = 0.0;
};

/// \brief One sequential stage of the model: either a plain chain of
/// linear layers (`is_residual == false`, shortcut ignored) or a residual
/// block `y = F(x) + W_s x`.
struct BlockProfile {
  bool is_residual = false;
  std::vector<LayerProfile> body;
  /// Residual blocks only: true when the shortcut is a projection; false
  /// means identity (sigma_s == 1). MLP-style plain chains have no
  /// shortcut at all (sigma_s == 0 in the paper's convention).
  bool has_projection = false;
  LayerProfile shortcut;  // Valid when has_projection.
  /// Derivative bound of the post-addition activation.
  double post_activation_gain = 1.0;
};

/// \brief Full spectral profile of a model: everything Eq. (3) needs.
struct ModelProfile {
  std::string model_name;
  std::vector<BlockProfile> blocks;
  /// Flattened input dimension n_0 (single sample).
  int64_t n0 = 0;
  /// Flattened output dimension.
  int64_t n_out = 0;
  /// L2 norms of the rows of the final linear layer (for per-feature QoI
  /// bounds); empty when the final layer is not linear.
  std::vector<double> final_row_norms;
};

/// \brief Walks a trained model (PSN must be folded; the function folds a
/// clone defensively) and measures every layer's operator norm, producing
/// the profile consumed by `ErrorFlowAnalysis`.
///
/// `single_input_shape` carries the per-sample input shape with a leading
/// batch dim of 1, e.g. {1, 9} or {1, 13, 32, 32}; conv operator norms
/// depend on the spatial extent.
ModelProfile ProfileModel(const nn::Model& model,
                          const tensor::Shape& single_input_shape);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_SPECTRAL_PROFILE_H_
