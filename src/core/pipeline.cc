#include "core/pipeline.h"

#include <cmath>

#include "tensor/norms.h"
#include "util/string_util.h"

namespace errorflow {
namespace core {

namespace {

// Max per-sample error over a batch, in the given norm. Rank-2 tensors
// treat rows as samples; rank-4 treat the leading dim as samples.
double MaxPerSampleError(const Tensor& ref, const Tensor& got, Norm norm) {
  EF_CHECK(ref.size() == got.size() && ref.ndim() >= 2);
  const int64_t n = ref.dim(0);
  const int64_t per = ref.size() / n;
  double worst = 0.0;
  for (int64_t s = 0; s < n; ++s) {
    const float* a = ref.data() + s * per;
    const float* b = got.data() + s * per;
    if (norm == Norm::kL2) {
      double acc = 0.0;
      for (int64_t i = 0; i < per; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
      }
      worst = std::max(worst, std::sqrt(acc));
    } else {
      for (int64_t i = 0; i < per; ++i) {
        worst = std::max(
            worst, std::fabs(static_cast<double>(a[i]) - b[i]));
      }
    }
  }
  return worst;
}

// Max per-sample norm of a batch (for relative-error denominators).
double MaxPerSampleNorm(const Tensor& t, Norm norm) {
  const int64_t n = t.dim(0);
  const int64_t per = t.size() / n;
  double worst = 0.0;
  for (int64_t s = 0; s < n; ++s) {
    const float* a = t.data() + s * per;
    if (norm == Norm::kL2) {
      double acc = 0.0;
      for (int64_t i = 0; i < per; ++i) {
        acc += static_cast<double>(a[i]) * a[i];
      }
      worst = std::max(worst, std::sqrt(acc));
    } else {
      for (int64_t i = 0; i < per; ++i) {
        worst = std::max(worst, std::fabs(static_cast<double>(a[i])));
      }
    }
  }
  return worst;
}

}  // namespace

InferencePipeline::InferencePipeline(nn::Model model,
                                     tensor::Shape single_input_shape,
                                     PipelineConfig config)
    : model_(std::move(model)),
      single_input_shape_(std::move(single_input_shape)),
      config_(config),
      analysis_(ProfileModel(model_, single_input_shape_)),
      compressor_(compress::MakeCompressor(config.backend)),
      storage_(config.storage) {
  model_.FoldPsn();
  flops_per_sample_ = model_.FlopsPerSample(single_input_shape_);
  int64_t elems = 1;
  for (size_t i = 1; i < single_input_shape_.size(); ++i) {
    elems *= single_input_shape_[i];
  }
  bytes_per_sample_ = elems * static_cast<int64_t>(sizeof(float));
}

AllocationPlan InferencePipeline::Plan(double qoi_tolerance) const {
  AllocationConfig alloc;
  alloc.norm = config_.norm;
  alloc.quant_fraction = config_.quant_fraction;
  alloc.hardware = config_.hardware;
  alloc.allow_quantization = config_.allow_quantization;
  return AllocateTolerance(analysis_, qoi_tolerance, alloc);
}

nn::Model* InferencePipeline::QuantizedFor(NumericFormat format) {
  auto it = quantized_cache_.find(format);
  if (it == quantized_cache_.end()) {
    quant::QuantizedModel qm = quant::QuantizeWeights(model_, format);
    it = quantized_cache_.emplace(format, std::move(qm.model)).first;
  }
  return &it->second;
}

Result<PipelineReport> InferencePipeline::Run(const Tensor& input_batch,
                                              double qoi_tolerance) {
  if (input_batch.ndim() < 2) {
    return Status::InvalidArgument("pipeline: batch tensor required");
  }
  const AllocationPlan plan = Plan(qoi_tolerance);

  PipelineReport report;
  report.format = plan.format;
  report.input_tolerance = plan.input_tolerance;
  report.predicted_qoi_bound = plan.predicted_total_bound;
  report.quant_bound = plan.quant_bound;

  // Reference output: full-precision model on pristine input.
  const Tensor reference = model_.Predict(input_batch);
  report.reference_qoi_norm = MaxPerSampleNorm(reference, config_.norm);

  // --- Reduction + storage ---
  compress::ErrorBound bound;
  bound.norm = config_.norm;
  bound.relative = false;
  bound.tolerance = plan.input_tolerance;
  EF_ASSIGN_OR_RETURN(compress::Compressed compressed,
                      compressor_->Compress(input_batch, bound));
  report.original_bytes = compressed.original_bytes;
  report.compressed_bytes = static_cast<int64_t>(compressed.blob.size());
  report.compression_ratio = compressed.ratio();
  EF_RETURN_IF_ERROR(storage_.Write("batch", std::move(compressed.blob)));

  // --- I/O phase: simulated transfer + real decompression ---
  EF_ASSIGN_OR_RETURN(io::ReadResult read, storage_.Read("batch"));
  report.read_seconds = read.simulated_seconds;
  EF_ASSIGN_OR_RETURN(compress::Decompressed decompressed,
                      compressor_->Decompress(read.data));
  report.decompress_seconds =
      decompressed.seconds /
      std::max(1.0, config_.storage.decompress_parallelism);
  report.io_seconds = report.read_seconds + report.decompress_seconds;

  // --- Execution phase: quantized inference ---
  nn::Model* qmodel = QuantizedFor(plan.format);
  const Tensor output = qmodel->Predict(decompressed.data);
  const int64_t batch = input_batch.dim(0);
  quant::ExecutionModel exec(config_.hardware, flops_per_sample_,
                             bytes_per_sample_);
  report.exec_seconds =
      exec.SecondsPerSample(plan.format) * static_cast<double>(batch);

  // --- Throughput accounting ---
  const double bytes = static_cast<double>(report.original_bytes);
  report.io_throughput = bytes / std::max(1e-12, report.io_seconds);
  report.exec_throughput = bytes / std::max(1e-12, report.exec_seconds);
  report.total_throughput =
      std::min(report.io_throughput, report.exec_throughput);

  // --- Achieved errors ---
  report.achieved_input_error =
      MaxPerSampleError(input_batch, decompressed.data, config_.norm);
  report.achieved_qoi_error =
      MaxPerSampleError(reference, output, config_.norm);
  return report;
}

}  // namespace core
}  // namespace errorflow
