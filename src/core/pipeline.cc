#include "core/pipeline.h"

#include <cmath>

#include "obs/error_budget.h"
#include "obs/trace.h"
#include "tensor/norms.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace errorflow {
namespace core {

namespace {

// Metric names; conventions in docs/OBSERVABILITY.md.
constexpr char kRuns[] = "errorflow.pipeline.runs";
constexpr char kBytesIn[] = "errorflow.pipeline.bytes_in";
constexpr char kBytesOut[] = "errorflow.pipeline.bytes_out";
constexpr char kFormatGauge[] = "errorflow.pipeline.format";
constexpr char kInputToleranceGauge[] = "errorflow.pipeline.input_tolerance";
constexpr char kQuantBoundGauge[] = "errorflow.pipeline.quant_bound";
constexpr char kCompressHist[] = "errorflow.pipeline.compress_seconds";
constexpr char kWriteHist[] = "errorflow.pipeline.write_seconds";
constexpr char kReadHist[] = "errorflow.pipeline.read_seconds";
constexpr char kDecompressHist[] = "errorflow.pipeline.decompress_seconds";
constexpr char kExecHist[] = "errorflow.pipeline.exec_seconds";

// Max per-sample error over a batch, in the given norm. Rank-2 tensors
// treat rows as samples; rank-4 treat the leading dim as samples.
double MaxPerSampleError(const Tensor& ref, const Tensor& got, Norm norm) {
  EF_CHECK(ref.size() == got.size() && ref.ndim() >= 2);
  const int64_t n = ref.dim(0);
  const int64_t per = ref.size() / n;
  double worst = 0.0;
  for (int64_t s = 0; s < n; ++s) {
    const float* a = ref.data() + s * per;
    const float* b = got.data() + s * per;
    if (norm == Norm::kL2) {
      double acc = 0.0;
      for (int64_t i = 0; i < per; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
      }
      worst = std::max(worst, std::sqrt(acc));
    } else {
      for (int64_t i = 0; i < per; ++i) {
        worst = std::max(
            worst, std::fabs(static_cast<double>(a[i]) - b[i]));
      }
    }
  }
  return worst;
}

// Max per-sample norm of a batch (for relative-error denominators).
double MaxPerSampleNorm(const Tensor& t, Norm norm) {
  const int64_t n = t.dim(0);
  const int64_t per = t.size() / n;
  double worst = 0.0;
  for (int64_t s = 0; s < n; ++s) {
    const float* a = t.data() + s * per;
    if (norm == Norm::kL2) {
      double acc = 0.0;
      for (int64_t i = 0; i < per; ++i) {
        acc += static_cast<double>(a[i]) * a[i];
      }
      worst = std::max(worst, std::sqrt(acc));
    } else {
      for (int64_t i = 0; i < per; ++i) {
        worst = std::max(worst, std::fabs(static_cast<double>(a[i])));
      }
    }
  }
  return worst;
}

}  // namespace

InferencePipeline::InferencePipeline(nn::Model model,
                                     tensor::Shape single_input_shape,
                                     PipelineConfig config)
    : model_(std::move(model)),
      single_input_shape_(std::move(single_input_shape)),
      config_(config),
      analysis_(ProfileModel(model_, single_input_shape_)),
      compressor_(compress::MakeCompressor(config.backend, config.codec)),
      storage_(config.storage) {
  model_.FoldPsn();
  flops_per_sample_ = model_.FlopsPerSample(single_input_shape_);
  int64_t elems = 1;
  for (size_t i = 1; i < single_input_shape_.size(); ++i) {
    elems *= single_input_shape_[i];
  }
  bytes_per_sample_ = elems * static_cast<int64_t>(sizeof(float));
}

AllocationPlan InferencePipeline::Plan(double qoi_tolerance) const {
  AllocationConfig alloc;
  alloc.norm = config_.norm;
  alloc.quant_fraction = config_.quant_fraction;
  alloc.hardware = config_.hardware;
  alloc.allow_quantization = config_.allow_quantization;
  return AllocateTolerance(analysis_, qoi_tolerance, alloc);
}

nn::Model* InferencePipeline::QuantizedFor(NumericFormat format) {
  auto it = quantized_cache_.find(format);
  if (it == quantized_cache_.end()) {
    quant::QuantizedModel qm = quant::QuantizeWeights(model_, format);
    it = quantized_cache_.emplace(format, std::move(qm.model)).first;
  }
  return &it->second;
}

Result<Tensor> InferencePipeline::ExecuteQuantized(const Tensor& batch,
                                                   NumericFormat format) {
  if (batch.ndim() < 2) {
    return Status::InvalidArgument("pipeline: batch tensor required");
  }
  nn::Model* qmodel = QuantizedFor(format);
  obs::TraceSpan span("pipeline.exec");
  return qmodel->Predict(batch);
}

Result<PipelineReport> InferencePipeline::Run(const Tensor& input_batch,
                                              double qoi_tolerance) {
  if (input_batch.ndim() < 2) {
    return Status::InvalidArgument("pipeline: batch tensor required");
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::TraceSpan run_span("pipeline.run");
  const AllocationPlan plan = Plan(qoi_tolerance);

  PipelineReport report;
  report.format = plan.format;
  report.input_tolerance = plan.input_tolerance;
  report.predicted_qoi_bound = plan.predicted_total_bound;
  report.quant_bound = plan.quant_bound;

  // Reference output: full-precision model on pristine input.
  Tensor reference;
  {
    obs::TraceSpan span("pipeline.reference");
    reference = model_.Predict(input_batch);
  }
  report.reference_qoi_norm = MaxPerSampleNorm(reference, config_.norm);

  // --- Reduction + storage ---
  util::Stopwatch phases;
  compress::ErrorBound bound;
  bound.norm = config_.norm;
  bound.relative = false;
  bound.tolerance = plan.input_tolerance;
  compress::Compressed compressed;
  {
    obs::TraceSpan span("pipeline.compress");
    EF_ASSIGN_OR_RETURN(compressed,
                        compressor_->Compress(input_batch, bound));
  }
  report.compress_seconds = phases.LapSeconds();
  report.original_bytes = compressed.original_bytes;
  report.compressed_bytes = static_cast<int64_t>(compressed.blob.size());
  report.compression_ratio = compressed.ratio();
  {
    obs::TraceSpan span("pipeline.write");
    EF_RETURN_IF_ERROR(storage_.Write("batch", std::move(compressed.blob)));
  }
  report.write_seconds = phases.LapSeconds();

  // --- I/O phase: simulated transfer + real decompression ---
  io::ReadResult read;
  {
    obs::TraceSpan span("pipeline.read");
    EF_ASSIGN_OR_RETURN(read, storage_.Read("batch"));
  }
  report.read_seconds = read.simulated_seconds;
  compress::Decompressed decompressed;
  {
    obs::TraceSpan span("pipeline.decompress");
    EF_ASSIGN_OR_RETURN(decompressed, compressor_->Decompress(read.data));
  }
  report.decompress_seconds =
      decompressed.seconds /
      std::max(1.0, config_.storage.decompress_parallelism);
  report.io_seconds = report.read_seconds + report.decompress_seconds;

  // --- Execution phase: quantized inference ---
  Tensor output;
  EF_ASSIGN_OR_RETURN(output,
                      ExecuteQuantized(decompressed.data, plan.format));
  const int64_t batch = input_batch.dim(0);
  quant::ExecutionModel exec(config_.hardware, flops_per_sample_,
                             bytes_per_sample_);
  report.exec_seconds =
      exec.SecondsPerSample(plan.format) * static_cast<double>(batch);

  // --- Throughput accounting ---
  const double bytes = static_cast<double>(report.original_bytes);
  report.io_throughput = bytes / std::max(1e-12, report.io_seconds);
  report.exec_throughput = bytes / std::max(1e-12, report.exec_seconds);
  report.total_throughput =
      std::min(report.io_throughput, report.exec_throughput);

  // --- Achieved errors ---
  report.achieved_input_error =
      MaxPerSampleError(input_batch, decompressed.data, config_.norm);
  report.achieved_qoi_error =
      MaxPerSampleError(reference, output, config_.norm);

  // --- Error-budget ledger: the pipeline measures achieved QoI error
  // against the FP32 reference on every run, so each run is an audited
  // sample of errorflow.bound.tightness, annotated onto the run span.
  {
    obs::ErrorBudgetLedger ledger;
    ledger.model = model_.name().empty() ? "pipeline" : model_.name();
    ledger.format = quant::FormatToString(plan.format);
    ledger.admitted_bound = plan.predicted_total_bound;
    ledger.quant_term = plan.quant_bound;
    ledger.compression_term = plan.predicted_total_bound - plan.quant_bound;
    ledger.achieved_error = report.achieved_qoi_error;
    ledger.audited = true;
    obs::RecordErrorBudget(ledger, &run_span);
  }

  // --- Metrics: the histograms mirror the report's phase values (some
  // measured, some modeled) so aggregate sums reconcile with the reports.
  registry.GetCounter(kRuns)->Increment();
  registry.GetCounter(kBytesIn)->Increment(
      static_cast<uint64_t>(report.original_bytes));
  registry.GetCounter(kBytesOut)->Increment(
      static_cast<uint64_t>(report.compressed_bytes));
  registry.GetGauge(kFormatGauge)
      ->Set(static_cast<double>(static_cast<int>(report.format)));
  registry.GetGauge(kInputToleranceGauge)->Set(report.input_tolerance);
  registry.GetGauge(kQuantBoundGauge)->Set(report.quant_bound);
  registry.GetHistogram(kCompressHist)->Record(report.compress_seconds);
  registry.GetHistogram(kWriteHist)->Record(report.write_seconds);
  registry.GetHistogram(kReadHist)->Record(report.read_seconds);
  registry.GetHistogram(kDecompressHist)->Record(report.decompress_seconds);
  registry.GetHistogram(kExecHist)->Record(report.exec_seconds);
  return report;
}

PipelineReport PipelineReport::AggregateFromRegistry(
    const obs::MetricsRegistry& registry) {
  PipelineReport report;
  report.format = static_cast<NumericFormat>(
      static_cast<int>(registry.GaugeValue(kFormatGauge)));
  report.input_tolerance = registry.GaugeValue(kInputToleranceGauge);
  report.quant_bound = registry.GaugeValue(kQuantBoundGauge);
  report.original_bytes =
      static_cast<int64_t>(registry.CounterValue(kBytesIn));
  report.compressed_bytes =
      static_cast<int64_t>(registry.CounterValue(kBytesOut));
  if (report.compressed_bytes > 0) {
    report.compression_ratio = static_cast<double>(report.original_bytes) /
                               static_cast<double>(report.compressed_bytes);
  }
  report.compress_seconds = registry.HistogramSnapshotOf(kCompressHist).sum;
  report.write_seconds = registry.HistogramSnapshotOf(kWriteHist).sum;
  report.read_seconds = registry.HistogramSnapshotOf(kReadHist).sum;
  report.decompress_seconds =
      registry.HistogramSnapshotOf(kDecompressHist).sum;
  report.exec_seconds = registry.HistogramSnapshotOf(kExecHist).sum;
  report.io_seconds = report.read_seconds + report.decompress_seconds;
  const double bytes = static_cast<double>(report.original_bytes);
  report.io_throughput = bytes / std::max(1e-12, report.io_seconds);
  report.exec_throughput = bytes / std::max(1e-12, report.exec_seconds);
  report.total_throughput =
      std::min(report.io_throughput, report.exec_throughput);
  return report;
}

double PipelineReport::RelativeQoIError() const {
  if (reference_qoi_norm <= 0.0) return 0.0;
  return achieved_qoi_error / reference_qoi_norm;
}

std::string PipelineReport::Summary() const {
  std::string out;
  out += util::StrFormat("  format              : %s\n",
                         quant::FormatToString(format));
  out += util::StrFormat("  input tolerance     : %.3e  (quant bound %.3e)\n",
                         input_tolerance, quant_bound);
  out += util::StrFormat(
      "  bytes               : %s -> %s  (ratio %.2fx)\n",
      util::HumanBytes(static_cast<double>(original_bytes)).c_str(),
      util::HumanBytes(static_cast<double>(compressed_bytes)).c_str(),
      compression_ratio);
  out += util::StrFormat(
      "  phases (s)          : compress %.3e  write %.3e  read %.3e  "
      "decompress %.3e  exec %.3e\n",
      compress_seconds, write_seconds, read_seconds, decompress_seconds,
      exec_seconds);
  out += util::StrFormat(
      "  throughput          : io %s  exec %s  total %s\n",
      util::HumanThroughput(io_throughput).c_str(),
      util::HumanThroughput(exec_throughput).c_str(),
      util::HumanThroughput(total_throughput).c_str());
  if (predicted_qoi_bound > 0.0 || achieved_qoi_error > 0.0) {
    out += util::StrFormat(
        "  errors              : input %.3e  qoi %.3e  (bound %.3e)\n",
        achieved_input_error, achieved_qoi_error, predicted_qoi_bound);
  }
  return out;
}

}  // namespace core
}  // namespace errorflow
