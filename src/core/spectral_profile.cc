#include "core/spectral_profile.h"

#include <cmath>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/residual.h"
#include "tensor/norms.h"
#include "util/macros.h"

namespace errorflow {
namespace core {

namespace {

using nn::Layer;
using nn::LayerKind;
using tensor::Shape;

int64_t FlatSize(const Shape& s) {
  int64_t n = 1;
  for (size_t i = 1; i < s.size(); ++i) n *= s[i];
  return n;
}

LayerProfile ProfileDense(const nn::DenseLayer& d) {
  LayerProfile p;
  p.name = d.ToString();
  p.sigma = d.SpectralNorm();
  p.n_in = d.in_features();
  p.n_out = d.out_features();
  p.weight = d.EffectiveWeight();
  p.noise_sqrt = std::sqrt(static_cast<double>(p.n_out));
  p.sigma_pert_sqrt =
      std::sqrt(static_cast<double>(std::min(p.n_in, p.n_out)));
  return p;
}

LayerProfile ProfileConv(const nn::Conv2dLayer& c, const Shape& in_shape) {
  LayerProfile p;
  p.name = c.ToString();
  EF_CHECK(in_shape.size() == 4);
  p.sigma = c.OperatorNorm(in_shape[2], in_shape[3]);
  const Shape out_shape = c.OutputShape(in_shape);
  p.n_in = FlatSize(in_shape);
  p.n_out = FlatSize(out_shape);
  p.weight = c.EffectiveWeight();
  const double k = c.kernel();
  p.noise_sqrt = k * std::sqrt(static_cast<double>(c.out_channels()));
  p.sigma_pert_sqrt =
      k * std::sqrt(static_cast<double>(
              std::min<int64_t>(c.in_channels() * c.kernel() * c.kernel(),
                                c.out_channels())));
  return p;
}

// Profiles a flat list of layers into (linear layers + absorbed
// activation/pool gains). Updates `shape` through every layer.
void ProfileChain(const std::vector<std::unique_ptr<Layer>>& layers,
                  Shape* shape, std::vector<LayerProfile>* out,
                  std::vector<BlockProfile>* blocks);

BlockProfile ProfileResidual(const nn::ResidualBlock& block, Shape* shape) {
  BlockProfile bp;
  bp.is_residual = true;
  const Shape in_shape = *shape;
  std::vector<BlockProfile> nested;  // Nested residuals not supported.
  ProfileChain(block.body(), shape, &bp.body, &nested);
  EF_CHECK(nested.empty() && "nested residual blocks are not supported");
  if (block.shortcut() != nullptr) {
    bp.has_projection = true;
    if (const auto* d =
            dynamic_cast<const nn::DenseLayer*>(block.shortcut())) {
      bp.shortcut = ProfileDense(*d);
    } else if (const auto* c = dynamic_cast<const nn::Conv2dLayer*>(
                   block.shortcut())) {
      bp.shortcut = ProfileConv(*c, in_shape);
    } else {
      EF_CHECK(false && "unsupported shortcut layer");
    }
  }
  if (const auto* act = dynamic_cast<const nn::ActivationLayer*>(
          block.post_activation())) {
    bp.post_activation_gain =
        nn::ActivationDerivativeBound(act->activation_kind());
  }
  return bp;
}

void ProfileChain(const std::vector<std::unique_ptr<Layer>>& layers,
                  Shape* shape, std::vector<LayerProfile>* out,
                  std::vector<BlockProfile>* blocks) {
  for (const auto& layer : layers) {
    switch (layer->kind()) {
      case LayerKind::kDense: {
        out->push_back(
            ProfileDense(*static_cast<const nn::DenseLayer*>(layer.get())));
        break;
      }
      case LayerKind::kConv2d: {
        out->push_back(ProfileConv(
            *static_cast<const nn::Conv2dLayer*>(layer.get()), *shape));
        break;
      }
      case LayerKind::kActivation: {
        const auto* act =
            static_cast<const nn::ActivationLayer*>(layer.get());
        const double c =
            nn::ActivationDerivativeBound(act->activation_kind());
        if (!out->empty()) {
          out->back().activation_gain *= c;
        }
        // A leading activation (before any linear layer) is a gain-c map
        // on the input; fold it into the next layer via a pseudo entry.
        // In practice our builders never emit that pattern.
        break;
      }
      case LayerKind::kResidualBlock: {
        EF_CHECK(blocks != nullptr &&
                 "residual block inside a residual body");
        // Flush any pending plain chain as its own block.
        if (!out->empty()) {
          BlockProfile plain;
          plain.is_residual = false;
          plain.body = std::move(*out);
          out->clear();
          blocks->push_back(std::move(plain));
        }
        blocks->push_back(ProfileResidual(
            *static_cast<const nn::ResidualBlock*>(layer.get()), shape));
        // ProfileResidual advanced the body shape; nothing more to do.
        continue;  // Shape already updated inside.
      }
      case LayerKind::kGlobalAvgPool:
      case LayerKind::kAvgPool2d:
      case LayerKind::kFlatten:
        // Linear contractions (operator norm <= 1): conservatively treated
        // as gain-1 pass-throughs; only the shape changes.
        break;
    }
    *shape = layer->OutputShape(*shape);
  }
}

}  // namespace

ModelProfile ProfileModel(const nn::Model& model,
                          const Shape& single_input_shape) {
  // Work on a folded clone so PSN layers expose plain weights.
  nn::Model folded = model.Clone();
  folded.FoldPsn();

  ModelProfile profile;
  profile.model_name = model.name();
  profile.n0 = FlatSize(single_input_shape);

  Shape shape = single_input_shape;
  std::vector<LayerProfile> pending;
  ProfileChain(folded.layers(), &shape, &pending, &profile.blocks);
  if (!pending.empty()) {
    BlockProfile plain;
    plain.is_residual = false;
    plain.body = std::move(pending);
    profile.blocks.push_back(std::move(plain));
  }
  profile.n_out = FlatSize(shape);

  // Per-feature row norms of the final linear layer, if the model ends
  // with a plain chain whose last layer is dense-like.
  if (!profile.blocks.empty()) {
    const BlockProfile& last = profile.blocks.back();
    if (!last.is_residual && !last.body.empty()) {
      const LayerProfile& lp = last.body.back();
      if (lp.weight.ndim() == 2 && lp.weight.dim(0) == profile.n_out) {
        for (int64_t r = 0; r < lp.weight.dim(0); ++r) {
          double acc = 0.0;
          for (int64_t c = 0; c < lp.weight.dim(1); ++c) {
            const double v = lp.weight.at(r, c);
            acc += v * v;
          }
          profile.final_row_norms.push_back(std::sqrt(acc));
        }
      }
    }
  }
  return profile;
}

}  // namespace core
}  // namespace errorflow
