#ifndef ERRORFLOW_CORE_AUTO_TUNER_H_
#define ERRORFLOW_CORE_AUTO_TUNER_H_

#include <vector>

#include "compress/compressor.h"
#include "core/error_bound.h"
#include "io/sim_storage.h"
#include "quant/hardware_model.h"
#include "util/result.h"

namespace errorflow {
namespace core {

/// \brief The paper's Sec. IV-D observation — "allocating a fixed
/// proportion of the total tolerance to quantization does not consistently
/// yield an optimal strategy ... this highlights the need for an
/// optimization algorithm to automate the determination of the optimal
/// strategy" — implemented.
///
/// Instead of a fixed quantization fraction, the tuner enumerates every
/// admissible quantization format (the discrete axis), derives the
/// compression tolerance each one leaves over (the continuous axis,
/// closed-form from the affine bound), *measures* the resulting
/// compression ratio and decompression speed on a sample batch, models
/// execution with the hardware profile, and picks the format maximizing
/// end-to-end throughput.
struct AutoTuneConfig {
  compress::Backend backend = compress::Backend::kSz;
  /// Entropy codec for newly written compressed streams.
  compress::CodecId codec = compress::kDefaultCodec;
  tensor::Norm norm = tensor::Norm::kLinf;
  io::StorageConfig storage;
  quant::HardwareProfile hardware;
};

/// One evaluated (format, compression tolerance) candidate.
struct AutoTuneCandidate {
  NumericFormat format = NumericFormat::kFP32;
  bool feasible = false;
  double input_tolerance = 0.0;
  double compression_ratio = 0.0;
  double io_throughput = 0.0;    // bytes of original data / s
  double exec_throughput = 0.0;  // bytes of original data / s
  double total_throughput = 0.0;
};

/// Tuning outcome: the winner plus the full candidate table (for reports).
struct AutoTuneResult {
  AutoTuneCandidate best;
  std::vector<AutoTuneCandidate> candidates;
};

/// Evaluates all formats on `sample_batch` under `qoi_tolerance` and
/// returns the throughput-optimal choice. `flops_per_sample` /
/// `bytes_per_sample` as in quant::ExecutionModel.
Result<AutoTuneResult> AutoTune(const ErrorFlowAnalysis& analysis,
                                double qoi_tolerance,
                                const tensor::Tensor& sample_batch,
                                int64_t flops_per_sample,
                                int64_t bytes_per_sample,
                                const AutoTuneConfig& config);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_AUTO_TUNER_H_
