#ifndef ERRORFLOW_CORE_ALLOCATOR_H_
#define ERRORFLOW_CORE_ALLOCATOR_H_

#include "core/error_bound.h"
#include "quant/hardware_model.h"

namespace errorflow {
namespace core {

/// \brief Configuration of the tolerance split between quantization and
/// compression (Sec. IV-D).
struct AllocationConfig {
  Norm norm = Norm::kLinf;
  /// Fraction of the total QoI tolerance offered to quantization (the
  /// "configurable factor" of Sec. IV-D; the paper sweeps 10%-90%).
  double quant_fraction = 0.5;
  /// Hardware profile used to rank formats by execution speed.
  quant::HardwareProfile hardware;
  /// When false, quantization is disabled and the full tolerance goes to
  /// compression.
  bool allow_quantization = true;
};

/// \brief The allocator's decision.
struct AllocationPlan {
  /// Chosen weight format (kFP32 when no reduced format fits the budget).
  NumericFormat format = NumericFormat::kFP32;
  /// Predicted quantization-only QoI bound of the chosen format.
  double quant_bound = 0.0;
  /// Input-error tolerance handed to the compressor (same norm as the
  /// request; all tolerance unused by quantization goes here).
  double input_tolerance = 0.0;
  /// Predicted total QoI bound at (format, input_tolerance).
  double predicted_total_bound = 0.0;
  /// Echo of the request.
  double qoi_tolerance = 0.0;
};

/// \brief Picks the fastest quantization format whose predicted QoI error
/// bound fits within `quant_fraction * qoi_tolerance`, then allocates every
/// remaining bit of tolerance to input compression (Sec. IV-D: "once
/// quantization is decided, all unutilized tolerance is allocated for data
/// reduction"). Quantization tolerance is discrete (few formats), so the
/// chosen format typically consumes less than its budget; the slack is not
/// wasted.
AllocationPlan AllocateTolerance(const ErrorFlowAnalysis& analysis,
                                 double qoi_tolerance,
                                 const AllocationConfig& config);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_ALLOCATOR_H_
