#include "core/allocator.h"

#include <algorithm>

namespace errorflow {
namespace core {

AllocationPlan AllocateTolerance(const ErrorFlowAnalysis& analysis,
                                 double qoi_tolerance,
                                 const AllocationConfig& config) {
  AllocationPlan plan;
  plan.qoi_tolerance = qoi_tolerance;
  plan.format = NumericFormat::kFP32;
  plan.quant_bound = 0.0;

  if (config.allow_quantization) {
    const double quant_budget = qoi_tolerance * config.quant_fraction;
    // Candidates ranked by execution speedup, fastest first.
    std::vector<NumericFormat> candidates = quant::ReducedFormats();
    std::sort(candidates.begin(), candidates.end(),
              [&config](NumericFormat a, NumericFormat b) {
                return config.hardware.Speedup(a) >
                       config.hardware.Speedup(b);
              });
    for (NumericFormat format : candidates) {
      const double bound = analysis.QuantTerm(format);
      if (bound <= quant_budget) {
        plan.format = format;
        plan.quant_bound = bound;
        break;
      }
    }
  }

  plan.input_tolerance =
      analysis.MaxInputError(qoi_tolerance, config.norm, plan.format);
  plan.predicted_total_bound =
      analysis.Bound(plan.input_tolerance, config.norm, plan.format);
  return plan;
}

}  // namespace core
}  // namespace errorflow
