#include "core/mixed_precision.h"

#include <algorithm>
#include <numeric>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/residual.h"
#include "quant/affine.h"
#include "quant/step_size.h"
#include "util/macros.h"

namespace errorflow {
namespace core {

namespace {

void CollectFromLayerList(
    const std::vector<std::unique_ptr<nn::Layer>>& layers,
    std::vector<nn::Layer*>* out) {
  for (const auto& layer : layers) {
    switch (layer->kind()) {
      case nn::LayerKind::kDense:
      case nn::LayerKind::kConv2d:
        out->push_back(layer.get());
        break;
      case nn::LayerKind::kResidualBlock: {
        auto* block = static_cast<nn::ResidualBlock*>(layer.get());
        CollectFromLayerList(block->body(), out);
        if (block->mutable_shortcut() != nullptr) {
          out->push_back(block->mutable_shortcut());
        }
        break;
      }
      default:
        break;
    }
  }
}

// Gathers LayerProfile pointers in the same traversal order as the bound
// engine's StepFn indices.
std::vector<const LayerProfile*> CollectProfiles(
    const ModelProfile& profile) {
  std::vector<const LayerProfile*> out;
  for (const BlockProfile& block : profile.blocks) {
    for (const LayerProfile& l : block.body) out.push_back(&l);
    if (block.is_residual && block.has_projection) {
      out.push_back(&block.shortcut);
    }
  }
  return out;
}

}  // namespace

double LayerFlops(const LayerProfile& layer) {
  if (layer.weight.ndim() != 2 || layer.weight.size() == 0) return 0.0;
  // Dense: one MAC per weight. Conv: each kernel weight fires once per
  // output pixel = n_out / out_channels times.
  const double reuse = static_cast<double>(layer.n_out) /
                       static_cast<double>(layer.weight.dim(0));
  return static_cast<double>(layer.weight.size()) * std::max(1.0, reuse);
}

ErrorFlowAnalysis::StepFn MixedStepFn(
    const std::vector<NumericFormat>& formats) {
  return [formats](const LayerProfile& layer, int64_t index) {
    EF_CHECK(index >= 0 &&
             index < static_cast<int64_t>(formats.size()));
    return quant::AverageStepSize(layer.weight,
                                  formats[static_cast<size_t>(index)]);
  };
}

MixedPrecisionPlan PlanMixedPrecision(
    const ErrorFlowAnalysis& analysis, double quant_budget,
    const quant::HardwareProfile& hardware) {
  const std::vector<const LayerProfile*> layers =
      CollectProfiles(analysis.profile());
  const size_t n = layers.size();

  MixedPrecisionPlan plan;
  plan.formats.assign(n, NumericFormat::kFP32);

  // Candidate formats, fastest first.
  std::vector<NumericFormat> by_speed = quant::ReducedFormats();
  std::sort(by_speed.begin(), by_speed.end(),
            [&hardware](NumericFormat a, NumericFormat b) {
              return hardware.Speedup(a) > hardware.Speedup(b);
            });

  // Layers by FLOPs, heaviest first.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&layers](size_t a, size_t b) {
    return LayerFlops(*layers[a]) > LayerFlops(*layers[b]);
  });

  for (size_t idx : order) {
    for (NumericFormat candidate : by_speed) {
      plan.formats[idx] = candidate;
      const double bound =
          analysis.QuantTermWithSteps(MixedStepFn(plan.formats));
      if (bound <= quant_budget) break;
      plan.formats[idx] = NumericFormat::kFP32;  // Revert; try slower.
    }
  }

  plan.quant_bound = analysis.QuantTermWithSteps(MixedStepFn(plan.formats));

  // FLOPs-weighted speedup of the assignment.
  double fp32_time = 0.0, mixed_time = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double flops = LayerFlops(*layers[i]);
    fp32_time += flops;
    mixed_time += flops / hardware.Speedup(plan.formats[i]);
  }
  plan.modeled_speedup = mixed_time > 0.0 ? fp32_time / mixed_time : 1.0;
  return plan;
}

std::vector<nn::Layer*> CollectLinearLayers(nn::Model* model) {
  std::vector<nn::Layer*> out;
  CollectFromLayerList(model->layers(), &out);
  return out;
}

nn::Model QuantizeMixed(const nn::Model& model,
                        const std::vector<NumericFormat>& formats) {
  nn::Model out = model.Clone();
  out.set_name(model.name() + ".mixed");
  out.FoldPsn();
  const std::vector<nn::Layer*> layers = CollectLinearLayers(&out);
  EF_CHECK(layers.size() == formats.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    tensor::Tensor* weight = nullptr;
    if (auto* d = dynamic_cast<nn::DenseLayer*>(layers[i])) {
      weight = &d->mutable_weight();
    } else if (auto* c = dynamic_cast<nn::Conv2dLayer*>(layers[i])) {
      weight = &c->mutable_weight();
    }
    EF_CHECK(weight != nullptr);
    if (formats[i] == NumericFormat::kINT8) {
      quant::QuantizeDequantizeInt8(weight);
    } else {
      quant::RoundBufferToFormat(weight->data(), weight->size(),
                                 formats[i]);
    }
  }
  return out;
}

}  // namespace core
}  // namespace errorflow
