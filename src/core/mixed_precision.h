#ifndef ERRORFLOW_CORE_MIXED_PRECISION_H_
#define ERRORFLOW_CORE_MIXED_PRECISION_H_

#include <vector>

#include "core/error_bound.h"
#include "nn/model.h"
#include "quant/hardware_model.h"

namespace errorflow {
namespace core {

/// \brief A per-layer format assignment, in error-flow traversal order
/// (plain chains in order; residual blocks body-then-shortcut) — the
/// "significantly larger optimization space" the paper's Sec. IV-D points
/// at for future work.
struct MixedPrecisionPlan {
  std::vector<NumericFormat> formats;
  /// Predicted quantization-only QoI bound under this assignment.
  double quant_bound = 0.0;
  /// FLOPs-weighted execution speedup over all-FP32 under the hardware
  /// profile.
  double modeled_speedup = 1.0;
};

/// Approximate multiply-accumulate count of one profiled linear layer.
double LayerFlops(const LayerProfile& layer);

/// \brief Greedy mixed-precision planner: starting from all-FP32, walks
/// layers in decreasing FLOPs order and demotes each to the fastest format
/// whose resulting total quantization bound still fits `quant_budget`.
/// Heavier layers are demoted first because they buy the most speed per
/// unit of error budget.
MixedPrecisionPlan PlanMixedPrecision(const ErrorFlowAnalysis& analysis,
                                      double quant_budget,
                                      const quant::HardwareProfile& hardware);

/// StepFn evaluating a mixed plan in the bound engine.
ErrorFlowAnalysis::StepFn MixedStepFn(
    const std::vector<NumericFormat>& formats);

/// \brief Weight-only quantization with per-layer formats (same traversal
/// order as the plan). Returns the quantized clone; `formats.size()` must
/// equal the model's linear-layer count.
nn::Model QuantizeMixed(const nn::Model& model,
                        const std::vector<NumericFormat>& formats);

/// Collects the model's linear layers (Dense/Conv) in error-flow
/// traversal order. Exposed for tests.
std::vector<nn::Layer*> CollectLinearLayers(nn::Model* model);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_MIXED_PRECISION_H_
