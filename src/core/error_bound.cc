#include "core/error_bound.h"

#include <cmath>

#include "quant/step_size.h"
#include "util/macros.h"

namespace errorflow {
namespace core {

namespace {

constexpr double kInvSqrt3 = 0.5773502691896258;
constexpr double kInv2Sqrt3 = 0.2886751345948129;

}  // namespace

double LayerStepSize(const LayerProfile& layer, NumericFormat format) {
  if (format == NumericFormat::kFP32) return 0.0;
  return quant::AverageStepSize(layer.weight, format);
}

namespace {

// Fallbacks for hand-built profiles that only set dims.
double NoiseSqrt(const LayerProfile& layer) {
  return layer.noise_sqrt > 0.0
             ? layer.noise_sqrt
             : std::sqrt(static_cast<double>(layer.n_out));
}

double SigmaPertSqrt(const LayerProfile& layer) {
  return layer.sigma_pert_sqrt > 0.0
             ? layer.sigma_pert_sqrt
             : std::sqrt(static_cast<double>(
                   std::min(layer.n_in, layer.n_out)));
}

}  // namespace

double QuantizedSigma(const LayerProfile& layer, NumericFormat format) {
  const double q = LayerStepSize(layer, format);
  return layer.sigma + q * SigmaPertSqrt(layer) * kInvSqrt3;
}

ErrorFlowAnalysis::ErrorFlowAnalysis(ModelProfile profile)
    : profile_(std::move(profile)) {}

ErrorFlowAnalysis::StepFn FormatStepFn(NumericFormat format) {
  return [format](const LayerProfile& layer, int64_t) {
    return LayerStepSize(layer, format);
  };
}

ErrorFlowAnalysis::StepFn VectorStepFn(std::vector<double> steps) {
  return [steps = std::move(steps)](const LayerProfile&, int64_t index) {
    EF_CHECK(index >= 0 && index < static_cast<int64_t>(steps.size()));
    return steps[static_cast<size_t>(index)];
  };
}

ErrorFlowAnalysis::FlowState ErrorFlowAnalysis::FlowBlock(
    const BlockProfile& block, FlowState in, const StepFn& step_fn,
    int64_t* layer_counter, double final_sigma_override,
    bool is_last_block, const ActInjectFn* act_inject) const {
  auto flow_linear = [&step_fn, layer_counter](
                         const LayerProfile& layer, FlowState s,
                         double sigma_override,
                         int64_t n_out_override) -> FlowState {
    LayerProfile eff = layer;
    if (sigma_override >= 0.0) eff.sigma = sigma_override;
    if (n_out_override >= 0) {
      eff.n_out = n_out_override;
      eff.noise_sqrt = std::sqrt(static_cast<double>(n_out_override));
    }
    const int64_t index = (*layer_counter)++;
    const double q = step_fn(eff, index);
    const double sigma_t = eff.sigma + q * SigmaPertSqrt(eff) * kInvSqrt3;
    const double injected =
        q * NoiseSqrt(eff) * kInv2Sqrt3 * s.act_norm * eff.activation_gain;
    FlowState out;
    out.error = sigma_t * s.error * eff.activation_gain + injected;
    out.act_norm = sigma_t * s.act_norm * eff.activation_gain;
    if (!s.contribs.empty()) {
      // The recursion is linear in the error component: scale every
      // tracked share by this layer's multiplier and credit the fresh
      // noise to this layer's slot. Keeps error == sum(contribs).
      out.contribs = std::move(s.contribs);
      const double mult = sigma_t * eff.activation_gain;
      for (double& c : out.contribs) c *= mult;
      out.contribs[static_cast<size_t>(index) + 1] += injected;
    }
    return out;
  };

  FlowState body = in;
  for (size_t l = 0; l < block.body.size(); ++l) {
    const bool is_final_layer =
        is_last_block && !block.is_residual && l + 1 == block.body.size();
    if (is_final_layer && final_sigma_override >= 0.0) {
      body = flow_linear(block.body[l], body, final_sigma_override,
                         /*n_out_override=*/1);
    } else {
      body = flow_linear(block.body[l], body, -1.0, -1);
    }
    if (!block.is_residual && act_inject != nullptr) {
      body.error += (*act_inject)(body.act_norm, block.body[l].n_out);
    }
  }
  if (!block.is_residual) return body;

  FlowState shortcut = in;
  if (block.has_projection) {
    shortcut = flow_linear(block.shortcut, in, -1.0, -1);
  }
  FlowState out;
  out.error = (body.error + shortcut.error) * block.post_activation_gain;
  out.act_norm =
      (body.act_norm + shortcut.act_norm) * block.post_activation_gain;
  if (!body.contribs.empty()) {
    // Both paths flowed from the same tracked input, so their shares add
    // slot-by-slot, exactly like the scalar errors above. (Attribution
    // never runs with act_inject, so the additions below stay untracked.)
    out.contribs = std::move(body.contribs);
    for (size_t i = 0; i < out.contribs.size(); ++i) {
      out.contribs[i] = (out.contribs[i] + shortcut.contribs[i]) *
                        block.post_activation_gain;
    }
  }
  if (act_inject != nullptr && !block.body.empty()) {
    out.error += (*act_inject)(out.act_norm, block.body.back().n_out);
  }
  return out;
}

ErrorFlowAnalysis::FlowState ErrorFlowAnalysis::Flow(
    FlowState state, const StepFn& step_fn, double final_sigma_override,
    const ActInjectFn* act_inject) const {
  int64_t counter = 0;
  for (size_t b = 0; b < profile_.blocks.size(); ++b) {
    state = FlowBlock(profile_.blocks[b], state, step_fn, &counter,
                      final_sigma_override,
                      b + 1 == profile_.blocks.size(), act_inject);
  }
  return state;
}

double ErrorFlowAnalysis::QuantTermWithActivations(
    NumericFormat weight_format, NumericFormat act_format) const {
  const ActInjectFn inject = [act_format](double act_norm,
                                          int64_t n_out) -> double {
    switch (act_format) {
      case NumericFormat::kFP32:
        return 0.0;
      case NumericFormat::kINT8:
        // Max-calibrated affine over [-H, H]: step <= 2H/255, per-element
        // error <= H/255, L2 over n elements <= H sqrt(n) / 255.
        return act_norm * std::sqrt(static_cast<double>(n_out)) / 255.0;
      default:
        // Float: relative rounding 2^-(m+1); ||rounded - h||_2 <=
        // 2^-(m+1) ||h||_2 <= 2^-(m+1) H.
        return std::exp2(-(quant::MantissaBits(act_format) + 1)) *
               act_norm;
    }
  };
  FlowState s{0.0, std::sqrt(static_cast<double>(profile_.n0))};
  return Flow(s, FormatStepFn(weight_format), -1.0, &inject).error;
}

int64_t ErrorFlowAnalysis::LinearLayerCount() const {
  int64_t count = 0;
  for (const BlockProfile& block : profile_.blocks) {
    count += static_cast<int64_t>(block.body.size());
    if (block.is_residual && block.has_projection) ++count;
  }
  return count;
}

double ErrorFlowAnalysis::Gain(NumericFormat format) const {
  // Propagate a unit input error with H = 0 (no quantization noise
  // injection): the resulting error is exactly the composed gain.
  return Flow(FlowState{1.0, 0.0}, FormatStepFn(format), -1.0).error;
}

double ErrorFlowAnalysis::QuantTerm(NumericFormat format) const {
  if (format == NumericFormat::kFP32) return 0.0;
  return QuantTermWithSteps(FormatStepFn(format));
}

double ErrorFlowAnalysis::QuantTermWithSteps(const StepFn& step_fn) const {
  FlowState s{0.0, std::sqrt(static_cast<double>(profile_.n0))};
  return Flow(s, step_fn, -1.0).error;
}

double ErrorFlowAnalysis::Bound(double input_err, Norm norm,
                                NumericFormat format) const {
  return BoundWithSteps(input_err, norm, FormatStepFn(format));
}

double ErrorFlowAnalysis::BoundWithSteps(double input_err, Norm norm,
                                         const StepFn& step_fn) const {
  EF_CHECK(input_err >= 0.0);
  double input_l2 = input_err;
  if (norm == Norm::kLinf) {
    input_l2 = input_err * std::sqrt(static_cast<double>(profile_.n0));
  }
  FlowState s{input_l2, std::sqrt(static_cast<double>(profile_.n0))};
  // The L2 output bound is also a valid Linf bound.
  return Flow(s, step_fn, -1.0).error;
}

BoundAttribution ErrorFlowAnalysis::Attribution(double input_err, Norm norm,
                                                NumericFormat format) const {
  return AttributionWithSteps(input_err, norm, FormatStepFn(format));
}

BoundAttribution ErrorFlowAnalysis::AttributionWithSteps(
    double input_err, Norm norm, const StepFn& step_fn) const {
  EF_CHECK(input_err >= 0.0);
  double input_l2 = input_err;
  if (norm == Norm::kLinf) {
    input_l2 = input_err * std::sqrt(static_cast<double>(profile_.n0));
  }
  const size_t num_layers = static_cast<size_t>(LinearLayerCount());

  FlowState tracked{input_l2, std::sqrt(static_cast<double>(profile_.n0))};
  tracked.contribs.assign(num_layers + 1, 0.0);
  tracked.contribs[0] = input_l2;
  const FlowState out = Flow(std::move(tracked), step_fn, -1.0);

  BoundAttribution attribution;
  attribution.input_err_l2 = input_l2;
  attribution.gain = Flow(FlowState{1.0, 0.0}, step_fn, -1.0).error;
  attribution.compression_term = out.contribs[0];

  // Rows in traversal order — the same numbering the StepFn saw.
  int64_t index = 0;
  auto append = [&](const LayerProfile& layer) {
    LayerAttribution row;
    row.layer = layer.name;
    row.index = index;
    row.sigma = layer.sigma;
    row.step_size = step_fn(layer, index);
    row.quantized_sigma =
        layer.sigma + row.step_size * SigmaPertSqrt(layer) * kInvSqrt3;
    row.amplification = row.quantized_sigma * layer.activation_gain;
    row.quant_share = out.contribs[static_cast<size_t>(index) + 1];
    attribution.quant_term += row.quant_share;
    attribution.layers.push_back(std::move(row));
    ++index;
  };
  for (const BlockProfile& block : profile_.blocks) {
    for (const LayerProfile& layer : block.body) append(layer);
    if (block.is_residual && block.has_projection) append(block.shortcut);
  }
  attribution.total = attribution.compression_term + attribution.quant_term;
  return attribution;
}

double ErrorFlowAnalysis::PerFeatureBound(int64_t feature, double input_err,
                                          Norm norm,
                                          NumericFormat format) const {
  EF_CHECK(feature >= 0 &&
           feature < static_cast<int64_t>(profile_.final_row_norms.size()));
  double input_l2 = input_err;
  if (norm == Norm::kLinf) {
    input_l2 = input_err * std::sqrt(static_cast<double>(profile_.n0));
  }
  FlowState s{input_l2, std::sqrt(static_cast<double>(profile_.n0))};
  const double row_norm =
      profile_.final_row_norms[static_cast<size_t>(feature)];
  return Flow(s, FormatStepFn(format), row_norm).error;
}

double ErrorFlowAnalysis::MaxInputError(double qoi_tolerance, Norm norm,
                                        NumericFormat format) const {
  const double gain = Gain(format);
  const double quant = QuantTerm(format);
  if (gain <= 0.0) return 0.0;
  const double slack = qoi_tolerance - quant;
  if (slack <= 0.0) return 0.0;
  double input_l2 = slack / gain;
  if (norm == Norm::kLinf) {
    input_l2 /= std::sqrt(static_cast<double>(profile_.n0));
  }
  return input_l2;
}

double ErrorFlowAnalysis::Eq3BoundL2(double input_l2_err,
                                     NumericFormat format) const {
  EF_CHECK(profile_.blocks.size() == 1 &&
           "Eq3BoundL2 applies to a single block/MLP");
  const BlockProfile& block = profile_.blocks[0];
  const size_t num_layers = block.body.size();

  double sigma_s = 0.0;
  if (block.is_residual) {
    sigma_s = block.has_projection ? block.shortcut.sigma : 1.0;
  }

  // First term: (sigma_s + prod sigma_l) * ||Delta x||.
  double prod_sigma = 1.0;
  for (const LayerProfile& l : block.body) {
    prod_sigma *= l.sigma * l.activation_gain;
  }
  double bound = (sigma_s + prod_sigma) * input_l2_err;

  // Second term: layer-by-layer quantization noise per Inequality (3).
  const double n0 = static_cast<double>(profile_.n0);
  for (size_t l = 0; l < num_layers; ++l) {
    double prefix = 1.0;  // prod_{i<l} (sigma_i + q_i sqrt(min)/sqrt 3)
    for (size_t i = 0; i < l; ++i) {
      prefix *= QuantizedSigma(block.body[i], format) *
                block.body[i].activation_gain;
    }
    double suffix = 1.0;  // prod_{j>l} sigma_j (plain, as printed).
    for (size_t j = l + 1; j < num_layers; ++j) {
      suffix *= block.body[j].sigma * block.body[j].activation_gain;
    }
    const double q = LayerStepSize(block.body[l], format);
    bound += prefix * suffix * q * std::sqrt(n0) *
             NoiseSqrt(block.body[l]) * kInv2Sqrt3;
  }
  return bound * block.post_activation_gain;
}

}  // namespace core
}  // namespace errorflow
