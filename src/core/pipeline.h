#ifndef ERRORFLOW_CORE_PIPELINE_H_
#define ERRORFLOW_CORE_PIPELINE_H_

#include <map>
#include <memory>
#include <string>

#include "compress/compressor.h"
#include "core/allocator.h"
#include "core/error_bound.h"
#include "io/sim_storage.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "quant/quantize_model.h"

namespace errorflow {
namespace core {

using tensor::Tensor;

/// \brief Configuration of an error-bounded inference pipeline (Fig. 1).
struct PipelineConfig {
  compress::Backend backend = compress::Backend::kSz;
  /// Entropy codec for newly written compressed streams.
  compress::CodecId codec = compress::kDefaultCodec;
  Norm norm = Norm::kLinf;
  /// Fraction of the QoI tolerance offered to quantization.
  double quant_fraction = 0.5;
  io::StorageConfig storage;
  quant::HardwareProfile hardware;
  bool allow_quantization = true;
};

/// \brief Measured + modeled outcome of one pipeline run.
struct PipelineReport {
  // Allocation decision.
  NumericFormat format = NumericFormat::kFP32;
  double input_tolerance = 0.0;
  double predicted_qoi_bound = 0.0;
  double quant_bound = 0.0;

  // Sizes.
  int64_t original_bytes = 0;
  int64_t compressed_bytes = 0;
  double compression_ratio = 0.0;

  // Phase timings, seconds. Compression and the storage write are measured
  // wall time; transfer is modeled (storage bandwidth); decompression is
  // measured for real; execution uses the calibrated hardware model. Each
  // value is also recorded into the process-global metrics registry as an
  // "errorflow.pipeline.<phase>_seconds" histogram.
  double compress_seconds = 0.0;
  double write_seconds = 0.0;
  double read_seconds = 0.0;
  double decompress_seconds = 0.0;
  double io_seconds = 0.0;
  double exec_seconds = 0.0;

  // Throughput in bytes of original (uncompressed) data per second.
  double io_throughput = 0.0;
  double exec_throughput = 0.0;
  /// min(io, exec): the phases overlap in an in-situ pipeline, so the
  /// slower one bounds the sustained rate (Fig. 10 right).
  double total_throughput = 0.0;

  // Achieved errors (absolute, on the normalized input/output spaces).
  double achieved_input_error = 0.0;
  double achieved_qoi_error = 0.0;
  /// Norm of the reference (full-precision, uncompressed) output; divide
  /// achieved/predicted by this for relative errors.
  double reference_qoi_norm = 0.0;

  /// Achieved QoI error relative to the per-sample reference norm
  /// (achieved_qoi_error / reference_qoi_norm); 0 when the reference norm
  /// is unknown or zero. Bench binaries and the serving layer use this
  /// instead of re-deriving the division.
  double RelativeQoIError() const;

  /// Rebuilds the aggregate phase/size/throughput view from the
  /// "errorflow.pipeline.*" metrics: phase seconds are histogram sums and
  /// byte counts are counter totals over every Run() since the last
  /// registry reset. Bench binaries use this instead of re-deriving the
  /// timing arithmetic per run.
  static PipelineReport AggregateFromRegistry(
      const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global());

  /// Human-readable multi-line summary (sizes, phase seconds, throughput,
  /// errors) shared by the CLI and bench binaries.
  std::string Summary() const;
};

/// \brief End-to-end error-bounded inference pipeline: compress -> store ->
/// read -> decompress -> quantized inference, with the tolerance split
/// chosen by the error-flow analysis.
///
/// The pipeline owns the model, its spectral profile, a per-format cache of
/// quantized clones, and the simulated storage tier.
class InferencePipeline {
 public:
  /// `model` must be trained; PSN is folded internally.
  /// `single_input_shape` as in ProfileModel ({1, features} or
  /// {1, C, H, W}).
  InferencePipeline(nn::Model model, tensor::Shape single_input_shape,
                    PipelineConfig config);

  /// The error-flow analysis over this model.
  const ErrorFlowAnalysis& analysis() const { return analysis_; }

  /// Allocation decision for a QoI tolerance, without running anything.
  AllocationPlan Plan(double qoi_tolerance) const;

  /// Runs the full pipeline on a batch under the QoI tolerance.
  Result<PipelineReport> Run(const Tensor& input_batch,
                             double qoi_tolerance);

  /// Execution phase only: runs `batch` through the weight-quantized
  /// variant for `format`, materializing (and caching) the variant on
  /// first use. Run() and the serving layer share this path, so repeated
  /// executions at the same format never re-quantize.
  Result<Tensor> ExecuteQuantized(const Tensor& batch, NumericFormat format);

  /// Number of quantized variants materialized so far.
  int64_t quantized_variant_count() const {
    return static_cast<int64_t>(quantized_cache_.size());
  }

  const PipelineConfig& config() const { return config_; }
  nn::Model& model() { return model_; }

 private:
  /// Returns (caching) the weight-quantized clone for a format.
  nn::Model* QuantizedFor(NumericFormat format);

  nn::Model model_;
  tensor::Shape single_input_shape_;
  PipelineConfig config_;
  ErrorFlowAnalysis analysis_;
  std::unique_ptr<compress::Compressor> compressor_;
  io::SimulatedStorage storage_;
  std::map<NumericFormat, nn::Model> quantized_cache_;
  int64_t flops_per_sample_ = 0;
  int64_t bytes_per_sample_ = 0;
};

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_PIPELINE_H_
