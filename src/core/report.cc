#include "core/report.h"

#include "quant/step_size.h"
#include "util/string_util.h"

namespace errorflow {
namespace core {

std::string ProfileReport(const ErrorFlowAnalysis& analysis) {
  const ModelProfile& profile = analysis.profile();
  std::string out = util::StrFormat(
      "ErrorFlow profile of '%s'\n"
      "  input dim n0 = %lld, output dim = %lld, blocks = %zu\n"
      "  compression gain (sigma_s + prod sigma): %.4f\n\n",
      profile.model_name.c_str(), static_cast<long long>(profile.n0),
      static_cast<long long>(profile.n_out), profile.blocks.size(),
      analysis.Gain());

  out += util::StrFormat("  %-30s %8s %8s %8s %12s\n", "layer", "sigma",
                         "n_in", "n_out", "q(fp16)");
  int block_index = 0;
  for (const BlockProfile& block : profile.blocks) {
    out += util::StrFormat("  block %d%s:\n", block_index++,
                           block.is_residual
                               ? (block.has_projection
                                      ? " (residual, projection)"
                                      : " (residual, identity)")
                               : "");
    for (const LayerProfile& layer : block.body) {
      out += util::StrFormat(
          "    %-28s %8.3f %8lld %8lld %12.3e\n",
          layer.name.substr(0, 28).c_str(), layer.sigma,
          static_cast<long long>(layer.n_in),
          static_cast<long long>(layer.n_out),
          quant::AverageStepSize(layer.weight, NumericFormat::kFP16));
    }
    if (block.is_residual && block.has_projection) {
      out += util::StrFormat("    %-28s %8.3f  (shortcut)\n",
                             block.shortcut.name.substr(0, 28).c_str(),
                             block.shortcut.sigma);
    }
  }

  out += "\n  quantization-only QoI bounds:\n";
  for (NumericFormat fmt : quant::ReducedFormats()) {
    out += util::StrFormat("    %-5s : %.4e\n", quant::FormatToString(fmt),
                           analysis.QuantTerm(fmt));
  }
  return out;
}

std::vector<LayerContribution> QuantTermBreakdown(
    const ErrorFlowAnalysis& analysis, NumericFormat format) {
  const ModelProfile& profile = analysis.profile();
  std::vector<const LayerProfile*> layers;
  for (const BlockProfile& block : profile.blocks) {
    for (const LayerProfile& l : block.body) layers.push_back(&l);
    if (block.is_residual && block.has_projection) {
      layers.push_back(&block.shortcut);
    }
  }
  const double total = analysis.QuantTerm(format);
  std::vector<LayerContribution> out;
  for (size_t k = 0; k < layers.size(); ++k) {
    const auto without_k = [format, k](const LayerProfile& layer,
                                       int64_t index) {
      if (index == static_cast<int64_t>(k)) return 0.0;
      return LayerStepSize(layer, format);
    };
    LayerContribution c;
    c.layer = layers[k]->name;
    c.step_size = LayerStepSize(*layers[k], format);
    c.contribution =
        std::max(0.0, total - analysis.QuantTermWithSteps(without_k));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace core
}  // namespace errorflow
