#ifndef ERRORFLOW_CORE_REPORT_H_
#define ERRORFLOW_CORE_REPORT_H_

#include <string>

#include "core/error_bound.h"

namespace errorflow {
namespace core {

/// \brief Human-readable multi-line report of a model's error-flow
/// profile: per-layer spectral norms, dims, Table-I step sizes, the
/// per-format quantization bounds, and the compression gain. Used by the
/// CLI and handy in notebooks/logs.
std::string ProfileReport(const ErrorFlowAnalysis& analysis);

/// \brief Per-layer breakdown of the quantization term for one format:
/// each layer's marginal contribution, QuantTerm(all layers quantized) -
/// QuantTerm(that layer kept FP32). The rows sum to approximately
/// QuantTerm(format) (exactly, up to the small sigma~ coupling between
/// layers). Useful for deciding which layers to keep at higher precision
/// (see core/mixed_precision.h).
struct LayerContribution {
  std::string layer;
  double step_size = 0.0;
  double contribution = 0.0;
};

std::vector<LayerContribution> QuantTermBreakdown(
    const ErrorFlowAnalysis& analysis, NumericFormat format);

}  // namespace core
}  // namespace errorflow

#endif  // ERRORFLOW_CORE_REPORT_H_
