#include "net/net_client.h"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace errorflow {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

int RemainingMs(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - SteadyClock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;
  return static_cast<int>(left.count());
}

}  // namespace

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     std::chrono::milliseconds timeout,
                                     util::DecodeLimits limits) {
  NetClient client;
  EF_ASSIGN_OR_RETURN(client.fd_, ConnectTcp(host, port, timeout));
  client.limits_ = limits;
  return client;
}

Result<uint64_t> NetClient::Submit(const SubmitFrame& submit) {
  EF_RETURN_IF_ERROR(conn_error_);
  if (!fd_.valid()) return Status::FailedPrecondition("net: not connected");
  const uint64_t id = next_id_++;
  EF_RETURN_IF_ERROR(SendAll(EncodeSubmit(id, submit)));
  return id;
}

Result<ResponseFrame> NetClient::Await(uint64_t request_id,
                                       std::chrono::milliseconds timeout) {
  const SteadyClock::time_point deadline = SteadyClock::now() + timeout;
  while (true) {
    auto found = responses_.find(request_id);
    if (found != responses_.end()) {
      ResponseFrame out = std::move(found->second);
      responses_.erase(found);
      return out;
    }
    auto err = errors_.find(request_id);
    if (err != errors_.end()) {
      Status status = err->second;
      errors_.erase(err);
      return status;
    }
    EF_RETURN_IF_ERROR(conn_error_);
    if (!fd_.valid()) {
      return Status::FailedPrecondition("net: not connected");
    }
    EF_RETURN_IF_ERROR(PumpOnce(deadline));
  }
}

Result<ResponseFrame> NetClient::Roundtrip(
    const SubmitFrame& submit, std::chrono::milliseconds timeout) {
  EF_ASSIGN_OR_RETURN(uint64_t id, Submit(submit));
  return Await(id, timeout);
}

Status NetClient::Ping(std::chrono::milliseconds timeout) {
  EF_RETURN_IF_ERROR(conn_error_);
  if (!fd_.valid()) return Status::FailedPrecondition("net: not connected");
  const uint64_t id = next_id_++;
  EF_RETURN_IF_ERROR(SendAll(EncodePing(id)));
  const SteadyClock::time_point deadline = SteadyClock::now() + timeout;
  while (pongs_.find(id) == pongs_.end()) {
    EF_RETURN_IF_ERROR(conn_error_);
    EF_RETURN_IF_ERROR(PumpOnce(deadline));
  }
  pongs_.erase(id);
  return Status::OK();
}

Status NetClient::SendAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    IoOutcome out =
        WriteSome(fd_.get(), bytes.data() + sent, bytes.size() - sent);
    if (out.would_block) {
      // Blocking socket: EAGAIN only under an injected fault cap of zero
      // or SO_SNDTIMEO; wait for writability.
      pollfd pfd{fd_.get(), POLLOUT, 0};
      (void)::poll(&pfd, 1, 50);
      continue;
    }
    if (out.n <= 0) {
      conn_error_ = Status::IOError(util::StrFormat(
          "net: send failed: %s", std::strerror(errno)));
      return conn_error_;
    }
    sent += static_cast<size_t>(out.n);
  }
  return Status::OK();
}

Status NetClient::PumpOnce(SteadyClock::time_point deadline) {
  const int wait_ms = RemainingMs(deadline);
  if (wait_ms <= 0) {
    return Status::DeadlineExceeded("net: await timed out");
  }
  pollfd pfd{fd_.get(), POLLIN, 0};
  const int polled = ::poll(&pfd, 1, wait_ms);
  if (polled < 0) {
    if (errno == EINTR) return Status::OK();
    conn_error_ = Status::IOError(util::StrFormat("net: poll failed: %s",
                                                  std::strerror(errno)));
    return conn_error_;
  }
  if (polled == 0) {
    return Status::DeadlineExceeded("net: await timed out");
  }

  char buf[64 * 1024];
  while (true) {
    IoOutcome out = ReadSome(fd_.get(), buf, sizeof(buf));
    if (out.would_block) break;
    if (out.n == 0) {
      conn_error_ =
          Status::IOError("net: connection closed by server");
      return conn_error_;
    }
    if (out.n < 0) {
      conn_error_ = Status::IOError(util::StrFormat(
          "net: recv failed: %s", std::strerror(errno)));
      return conn_error_;
    }
    rbuf_.append(buf, static_cast<size_t>(out.n));
    if (static_cast<size_t>(out.n) < sizeof(buf)) break;
  }

  size_t consumed = 0;
  while (true) {
    FrameHeader header;
    size_t frame_size = 0;
    auto extracted =
        TryExtractFrame(rbuf_.data() + consumed, rbuf_.size() - consumed,
                        limits_, &header, &frame_size);
    if (!extracted.ok()) {
      conn_error_ = extracted.status();
      break;
    }
    if (*extracted == ExtractResult::kNeedMore) break;
    const char* payload = rbuf_.data() + consumed + kFrameHeaderBytes;
    switch (header.type) {
      case FrameType::kResponse: {
        auto resp = DecodeResponse(payload, header.payload_len, limits_);
        if (!resp.ok()) {
          conn_error_ = resp.status();
        } else {
          responses_.emplace(header.request_id, std::move(*resp));
        }
        break;
      }
      case FrameType::kError: {
        auto err = DecodeError(payload, header.payload_len, limits_);
        if (!err.ok()) {
          conn_error_ = err.status();
          break;
        }
        Status typed = WireErrorToStatus(*err);
        if (header.request_id == 0) {
          // Connection-scoped refusal (framing violation, connection
          // cap): no request will ever complete.
          conn_error_ = typed;
        } else {
          errors_.emplace(header.request_id, std::move(typed));
        }
        break;
      }
      case FrameType::kPong:
        pongs_.insert(header.request_id);
        break;
      case FrameType::kPing:
        // Be a good liveness peer even as a client.
        EF_RETURN_IF_ERROR(SendAll(EncodePong(header.request_id)));
        break;
      case FrameType::kSubmit:
        conn_error_ = Status::InvalidArgument(
            "net: client received a Submit frame");
        break;
    }
    consumed += frame_size;
    if (!conn_error_.ok()) break;
  }
  if (consumed > 0) rbuf_.erase(0, consumed);
  return Status::OK();
}

}  // namespace net
}  // namespace errorflow
