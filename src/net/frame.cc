#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "util/macros.h"

namespace errorflow {
namespace net {

namespace {

using util::ByteReader;
using util::ByteWriter;
using util::CheckedMul;
using util::DecodeLimits;

void PutHeader(ByteWriter* w, FrameType type, uint64_t request_id,
               uint32_t payload_len) {
  w->PutU32(kFrameMagic);
  w->PutU8(kProtocolVersion);
  w->PutU8(static_cast<uint8_t>(type));
  w->PutU64(request_id);
  w->PutU32(payload_len);
}

std::string Finish(FrameType type, uint64_t request_id,
                   const std::string& payload) {
  EF_CHECK(payload.size() <= kMaxFramePayloadBytes);
  ByteWriter w;
  PutHeader(&w, type, request_id, static_cast<uint32_t>(payload.size()));
  w.Raw(payload.data(), payload.size());
  return std::move(w).Finish();
}

void PutTensor(ByteWriter* w, const tensor::Tensor& t) {
  w->PutShape(t.shape());
  w->Raw(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
}

/// Shape, then exactly NumElements(shape) raw floats. Every count is
/// justified against the bytes actually remaining in the payload before
/// any allocation.
Result<tensor::Tensor> GetTensor(ByteReader* r, const DecodeLimits& limits) {
  EF_ASSIGN_OR_RETURN(tensor::Shape shape, r->GetShape());
  uint64_t elements = 1;
  for (int64_t d : shape) {
    if (!CheckedMul(elements, static_cast<uint64_t>(d), &elements)) {
      return Status::Corruption("net: tensor shape element-count overflow");
    }
  }
  EF_RETURN_IF_ERROR(limits.CheckElements(elements, "net: tensor"));
  uint64_t bytes = 0;
  if (!CheckedMul(elements, sizeof(float), &bytes)) {
    return Status::Corruption("net: tensor byte-size overflow");
  }
  EF_RETURN_IF_ERROR(limits.CheckAlloc(bytes, "net: tensor"));
  if (bytes > r->remaining()) {
    return Status::Corruption("net: tensor data truncated");
  }
  EF_ASSIGN_OR_RETURN(auto rest, r->Rest());
  tensor::Tensor t(std::move(shape));
  // A zero-element tensor (any dim == 0) has no bytes to copy, and both
  // pointers may legitimately be null then — memcpy forbids that even
  // with size 0.
  if (bytes != 0) {
    std::memcpy(t.data(), rest.first, static_cast<size_t>(bytes));
  }
  // Rest() consumed everything; push back the unread tail.
  const size_t extra = rest.second - static_cast<size_t>(bytes);
  if (extra != 0) {
    return Status::Corruption("net: trailing bytes after tensor data");
  }
  return t;
}

Status RequireDrained(const ByteReader& r, const char* what) {
  if (r.remaining() != 0) {
    return Status::Corruption(std::string("net: trailing bytes after ") +
                              what + " payload");
  }
  return Status::OK();
}

}  // namespace

Status WireErrorToStatus(const ErrorFrame& error) {
  const auto code = static_cast<StatusCode>(error.code);
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kDeadlineExceeded:
      return Status(code, error.message);
    case StatusCode::kOk:
      break;
  }
  return Status::Internal("net: error frame with invalid status code: " +
                          error.message);
}

bool IsValidFrameType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kSubmit) &&
         raw <= static_cast<uint8_t>(FrameType::kPong);
}

std::string EncodeSubmit(uint64_t request_id, const SubmitFrame& submit) {
  ByteWriter p;
  p.PutBytes(submit.model);
  p.PutF64(submit.qoi_tolerance);
  p.PutU32(submit.deadline_ms);
  PutTensor(&p, submit.input);
  return Finish(FrameType::kSubmit, request_id, p.buffer());
}

std::string EncodeResponse(uint64_t request_id, const ResponseFrame& resp) {
  ByteWriter p;
  p.PutU8(resp.format);
  p.PutF64(resp.predicted_qoi_bound);
  p.PutU32(resp.batch_requests);
  p.PutU32(resp.batch_rows);
  p.PutF64(resp.queue_seconds);
  p.PutF64(resp.total_seconds);
  PutTensor(&p, resp.output);
  return Finish(FrameType::kResponse, request_id, p.buffer());
}

std::string EncodeError(uint64_t request_id, const ErrorFrame& error) {
  ByteWriter p;
  p.PutU8(error.code);
  std::string message = error.message;
  if (message.size() > kMaxErrorMessageBytes) {
    message.resize(kMaxErrorMessageBytes);
  }
  p.PutBytes(message);
  return Finish(FrameType::kError, request_id, p.buffer());
}

std::string EncodePing(uint64_t request_id) {
  return Finish(FrameType::kPing, request_id, std::string());
}

std::string EncodePong(uint64_t request_id) {
  return Finish(FrameType::kPong, request_id, std::string());
}

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload) {
  return Finish(type, request_id, payload);
}

Result<ExtractResult> TryExtractFrame(const char* data, size_t size,
                                      const DecodeLimits& limits,
                                      FrameHeader* header,
                                      size_t* frame_size) {
  if (size < kFrameHeaderBytes) return ExtractResult::kNeedMore;
  ByteReader r(data, size);
  EF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kFrameMagic) {
    return Status::Corruption("net: bad frame magic");
  }
  EF_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kProtocolVersion) {
    return Status::Corruption("net: unsupported protocol version");
  }
  EF_ASSIGN_OR_RETURN(uint8_t raw_type, r.GetU8());
  if (!IsValidFrameType(raw_type)) {
    return Status::Corruption("net: unknown frame type");
  }
  EF_ASSIGN_OR_RETURN(uint64_t request_id, r.GetU64());
  EF_ASSIGN_OR_RETURN(uint32_t payload_len, r.GetU32());
  const uint64_t cap =
      std::min<uint64_t>(kMaxFramePayloadBytes, limits.max_alloc_bytes);
  if (payload_len > cap) {
    return Status::Corruption("net: frame payload exceeds limit");
  }
  header->version = version;
  header->type = static_cast<FrameType>(raw_type);
  header->request_id = request_id;
  header->payload_len = payload_len;
  const size_t total = kFrameHeaderBytes + static_cast<size_t>(payload_len);
  if (size < total) return ExtractResult::kNeedMore;
  *frame_size = total;
  return ExtractResult::kFrame;
}

Result<SubmitFrame> DecodeSubmit(const char* payload, size_t len,
                                 const DecodeLimits& limits) {
  ByteReader r(payload, len);
  SubmitFrame out;
  EF_ASSIGN_OR_RETURN(out.model, r.GetBytesBounded(kMaxModelNameBytes));
  if (out.model.empty()) {
    return Status::Corruption("net: empty model name");
  }
  EF_ASSIGN_OR_RETURN(out.qoi_tolerance, r.GetF64());
  EF_ASSIGN_OR_RETURN(out.deadline_ms, r.GetU32());
  EF_ASSIGN_OR_RETURN(out.input, GetTensor(&r, limits));
  EF_RETURN_IF_ERROR(RequireDrained(r, "submit"));
  return out;
}

Result<ResponseFrame> DecodeResponse(const char* payload, size_t len,
                                     const DecodeLimits& limits) {
  ByteReader r(payload, len);
  ResponseFrame out;
  EF_ASSIGN_OR_RETURN(out.format, r.GetU8());
  if (out.format > 4) {
    return Status::Corruption("net: unknown numeric format ordinal");
  }
  EF_ASSIGN_OR_RETURN(out.predicted_qoi_bound, r.GetF64());
  EF_ASSIGN_OR_RETURN(out.batch_requests, r.GetU32());
  EF_ASSIGN_OR_RETURN(out.batch_rows, r.GetU32());
  EF_ASSIGN_OR_RETURN(out.queue_seconds, r.GetF64());
  EF_ASSIGN_OR_RETURN(out.total_seconds, r.GetF64());
  EF_ASSIGN_OR_RETURN(out.output, GetTensor(&r, limits));
  EF_RETURN_IF_ERROR(RequireDrained(r, "response"));
  return out;
}

Result<ErrorFrame> DecodeError(const char* payload, size_t len,
                               const DecodeLimits& limits) {
  (void)limits;  // Message cap is a protocol constant.
  ByteReader r(payload, len);
  ErrorFrame out;
  EF_ASSIGN_OR_RETURN(out.code, r.GetU8());
  EF_ASSIGN_OR_RETURN(out.message, r.GetBytesBounded(kMaxErrorMessageBytes));
  EF_RETURN_IF_ERROR(RequireDrained(r, "error"));
  return out;
}

Result<DecodedFrame> DecodeFrame(const std::string& wire,
                                 const util::DecodeLimits& limits) {
  DecodedFrame out;
  size_t frame_size = 0;
  EF_ASSIGN_OR_RETURN(
      ExtractResult extract,
      TryExtractFrame(wire.data(), wire.size(), limits, &out.header,
                      &frame_size));
  if (extract == ExtractResult::kNeedMore) {
    return Status::Corruption("net: incomplete frame");
  }
  const char* payload = wire.data() + kFrameHeaderBytes;
  const size_t len = out.header.payload_len;
  switch (out.header.type) {
    case FrameType::kSubmit: {
      EF_ASSIGN_OR_RETURN(out.submit, DecodeSubmit(payload, len, limits));
      break;
    }
    case FrameType::kResponse: {
      EF_ASSIGN_OR_RETURN(out.response,
                          DecodeResponse(payload, len, limits));
      break;
    }
    case FrameType::kError: {
      EF_ASSIGN_OR_RETURN(out.error, DecodeError(payload, len, limits));
      break;
    }
    case FrameType::kPing:
    case FrameType::kPong: {
      if (len != 0) {
        return Status::Corruption("net: ping/pong frame carries payload");
      }
      break;
    }
  }
  return out;
}

}  // namespace net
}  // namespace errorflow
