#ifndef ERRORFLOW_NET_LOAD_RIG_H_
#define ERRORFLOW_NET_LOAD_RIG_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "util/result.h"

namespace errorflow {
namespace net {

/// \brief One constant-rate segment of an open-loop run. Chaining phases
/// with different rates models bursts: e.g. a steady phase, a burst above
/// the server's saturation point, then recovery.
struct LoadPhase {
  double seconds = 1.0;
  /// Offered arrival rate in requests/second (Poisson arrivals:
  /// exponential inter-arrival gaps).
  double rate = 100.0;
};

/// \brief Open-loop load configuration. Unlike the closed-loop
/// `serve::RunClosedLoop`, arrivals are scheduled by a Poisson clock that
/// does not wait for responses, so queue buildup and shed/backpressure
/// behavior at and beyond saturation are actually observable.
struct NetLoadConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Concurrent client connections; arrivals round-robin across them.
  int connections = 64;
  std::vector<LoadPhase> phases = {{1.0, 100.0}};
  /// Request template. Its payload is encoded once and re-framed per
  /// request id, so the rig's per-arrival cost is one buffer append.
  SubmitFrame request;
  uint64_t seed = 1;
  /// After the last phase, how long to keep the loop running to collect
  /// late responses before counting the remainder as unanswered.
  std::chrono::milliseconds drain_timeout{3000};
  /// Arrivals beyond this many unanswered requests are dropped client-side
  /// (counted in `overload_dropped`) instead of growing memory without
  /// bound when the server is far past saturation.
  int64_t max_outstanding = 100000;
};

/// \brief Aggregated outcome of one open-loop run. Latency is measured
/// from each request's *scheduled* Poisson arrival time, not its send
/// time, so sender-side stalls cannot hide server queueing delay
/// (coordinated-omission-safe).
struct NetLoadStats {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  // OK responses per wall second.
  double wall_seconds = 0.0;
  uint64_t submitted = 0;
  uint64_t completed = 0;     // OK response frames.
  uint64_t rejected = 0;      // Typed error frames, any code.
  uint64_t backpressure = 0;  // ... of which kResourceExhausted.
  uint64_t deadline_shed = 0;  // ... of which kDeadlineExceeded.
  uint64_t unanswered = 0;  // Outstanding when the drain window closed.
  uint64_t overload_dropped = 0;  // Client-side max_outstanding drops.
  uint64_t connect_failures = 0;
  uint64_t connection_errors = 0;  // Connections that died mid-run.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;

  /// Multi-line human-readable block in the serve::LoadGenStats style.
  std::string Summary() const;
};

/// \brief Runs the configured phases against a NetServer over real
/// sockets: one engine thread multiplexing every connection through epoll,
/// nonblocking writes with per-connection buffers, responses matched to
/// scheduled arrival times by request id.
Result<NetLoadStats> RunNetLoad(const NetLoadConfig& config);

}  // namespace net
}  // namespace errorflow

#endif  // ERRORFLOW_NET_LOAD_RIG_H_
