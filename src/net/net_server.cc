#include "net/net_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "obs/log.h"
#include "util/string_util.h"

namespace errorflow {
namespace net {

namespace {

using serve::Clock;

/// Read-chunk size; also the write-buffer prefix-compaction threshold.
constexpr size_t kIoChunkBytes = 64 * 1024;

/// epoll_wait bound, so idle/drain sweeps run even on a silent socket set.
constexpr int kLoopTickMs = 50;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

/// \brief Scheduler-thread-to-loop-thread handoff. Completion callbacks
/// (running on scheduler workers) encode the wire frame, push it here, and
/// poke the eventfd; the loop drains the queue and appends to the owning
/// connection's write buffer. Shared-ptr-held by both the server and every
/// outstanding callback, so a callback firing after the loop exits lands
/// harmlessly (counted as a dropped response).
struct NetServer::CompletionHub {
  struct Completion {
    uint64_t conn_id = 0;
    /// Fully encoded Response or Error frame.
    std::string frame;
    /// StatusCode ordinal (0 = OK response frame).
    uint8_t code = 0;
    Clock::time_point dispatch_time;
  };

  std::mutex mu;
  std::vector<Completion> queue;
  /// False once the loop has exited; pushes then drop instead of queuing.
  bool loop_alive = true;
  OwnedFd wake_fd;
  std::atomic<int64_t> in_flight{0};

  // errorflow.net.* instrumentation (docs/NETWORKING.md); the hub carries
  // the pointers so both the loop and post-shutdown callbacks reach them.
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* closed;
  obs::Counter* idle_closed;
  obs::Gauge* active;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* decode_failures;
  obs::Counter* error_frames;
  obs::Counter* backpressure_errors;
  obs::Counter* dropped_responses;
  obs::Histogram* request_seconds;

  CompletionHub() {
    auto& reg = obs::MetricsRegistry::Global();
    accepted = reg.GetCounter("errorflow.net.connections.accepted");
    rejected = reg.GetCounter("errorflow.net.connections.rejected");
    closed = reg.GetCounter("errorflow.net.connections.closed");
    idle_closed = reg.GetCounter("errorflow.net.connections.idle_closed");
    active = reg.GetGauge("errorflow.net.connections.active");
    frames_in = reg.GetCounter("errorflow.net.frames.in");
    frames_out = reg.GetCounter("errorflow.net.frames.out");
    bytes_in = reg.GetCounter("errorflow.net.bytes.in");
    bytes_out = reg.GetCounter("errorflow.net.bytes.out");
    decode_failures = reg.GetCounter("errorflow.net.decode_failures");
    error_frames = reg.GetCounter("errorflow.net.error_frames");
    backpressure_errors =
        reg.GetCounter("errorflow.net.backpressure_errors");
    dropped_responses = reg.GetCounter("errorflow.net.dropped_responses");
    request_seconds = reg.GetHistogram("errorflow.net.request_seconds");
  }

  void Wake() {
    uint64_t one = 1;
    // The eventfd counter saturates rather than blocks under EFD_NONBLOCK;
    // a failed write still leaves earlier wakeups pending.
    (void)::write(wake_fd.get(), &one, sizeof(one));
  }

  /// Called from scheduler threads. Decrements in-flight *after* queuing,
  /// so the loop's drain condition (in_flight == 0 and queue empty) cannot
  /// observe zero with a completion still unqueued.
  void Push(Completion c) {
    bool delivered;
    {
      std::lock_guard<std::mutex> lock(mu);
      delivered = loop_alive;
      if (delivered) queue.push_back(std::move(c));
    }
    in_flight.fetch_sub(1, std::memory_order_acq_rel);
    if (delivered) {
      Wake();
    } else {
      dropped_responses->Increment();
    }
  }
};

/// \brief Event-loop state; constructed and used only on the loop thread.
struct NetServer::Loop {
  struct Conn {
    OwnedFd fd;
    uint64_t id = 0;
    std::string rbuf;
    std::string wbuf;
    /// Bytes of wbuf already written (prefix compacted lazily).
    size_t wpos = 0;
    Clock::time_point last_activity;
    /// Wire requests dispatched from this connection, response not yet
    /// appended to wbuf.
    int64_t in_flight = 0;
    bool close_after_flush = false;
    bool want_write = false;
  };

  NetServer* server;
  CompletionHub* hub;
  OwnedFd epoll_fd;
  std::chrono::milliseconds idle_timeout;
  bool draining = false;
  Clock::time_point drain_deadline;
  uint64_t next_conn_id = 2;  // 0 = listener, 1 = wake eventfd.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;

  explicit Loop(NetServer* s) : server(s), hub(s->hub_.get()) {
    idle_timeout = s->config_.idle_timeout;
    if (idle_timeout.count() <= 0) {
      // Satellite knob-sharing: the wire idle deadline defaults to the
      // inference server's request-deadline default.
      idle_timeout = s->server_->config().default_timeout;
    }
  }

  bool AddEpoll(int fd, uint64_t id, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    return epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void ModEpoll(const Conn& c, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = c.id;
    epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
  }

  void Run() {
    if (!AddEpoll(server->listener_.get(), 0, EPOLLIN) ||
        !AddEpoll(hub->wake_fd.get(), 1, EPOLLIN)) {
      obs::Logf(obs::LogLevel::kError,
                "net: epoll registration failed: %s", std::strerror(errno));
      return;
    }
    std::vector<epoll_event> events(256);
    while (true) {
      if (server->stop_requested_.load(std::memory_order_acquire) &&
          !draining) {
        BeginDrain();
      }
      if (draining && DrainComplete()) break;

      int n = epoll_wait(epoll_fd.get(), events.data(),
                         static_cast<int>(events.size()), kLoopTickMs);
      if (n < 0 && errno != EINTR) {
        obs::Logf(obs::LogLevel::kError, "net: epoll_wait failed: %s",
                  std::strerror(errno));
        break;
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t id = events[i].data.u64;
        if (id == 0) {
          HandleAccept();
        } else if (id == 1) {
          DrainWakeups();
        } else {
          auto it = conns.find(id);
          if (it == conns.end()) continue;  // Closed earlier this batch.
          Conn* c = it->second.get();
          if (events[i].events & (EPOLLHUP | EPOLLERR)) {
            CloseConn(c, /*idle=*/false);
            continue;
          }
          bool alive = true;
          if (events[i].events & EPOLLIN) alive = HandleRead(c);
          if (alive && (events[i].events & EPOLLOUT)) FlushWrites(c);
        }
      }
      DeliverCompletions();
      SweepIdle();
    }
    // Hand any still-running callbacks off to the drop path before the
    // loop state (and its conn ids) disappears.
    {
      std::lock_guard<std::mutex> lock(hub->mu);
      hub->loop_alive = false;
      for (auto& c : hub->queue) {
        (void)c;
        hub->dropped_responses->Increment();
      }
      hub->queue.clear();
    }
    while (!conns.empty()) {
      CloseConn(conns.begin()->second.get(), /*idle=*/false);
    }
  }

  void BeginDrain() {
    draining = true;
    drain_deadline = Clock::now() + server->config_.drain_timeout;
    // Stop accepting; existing connections keep flushing.
    epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, server->listener_.get(),
              nullptr);
    obs::Logf(obs::LogLevel::kInfo,
              "net: draining (%lld connections, %lld in flight)",
              static_cast<long long>(conns.size()),
              static_cast<long long>(
                  hub->in_flight.load(std::memory_order_acquire)));
  }

  bool DrainComplete() {
    if (Clock::now() >= drain_deadline) return true;
    if (hub->in_flight.load(std::memory_order_acquire) != 0) return false;
    {
      std::lock_guard<std::mutex> lock(hub->mu);
      if (!hub->queue.empty()) return false;
    }
    for (const auto& [id, c] : conns) {
      if (c->wpos < c->wbuf.size()) return false;
    }
    return true;
  }

  void HandleAccept() {
    while (true) {
      int fd = accept4(server->listener_.get(), nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;
      }
      OwnedFd owned(fd);
      const int64_t active =
          server->active_connections_.load(std::memory_order_relaxed);
      if (active >= server->config_.max_connections || draining) {
        hub->rejected->Increment();
        // Best-effort typed refusal so the client sees backpressure, not
        // a silent RST. The socket buffer of a fresh connection always
        // has room for one small frame; if not, the close still lands.
        ErrorFrame err;
        err.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
        err.message = draining ? "net: server draining"
                               : "net: connection limit reached";
        const std::string frame = EncodeError(0, err);
        (void)::send(owned.get(), frame.data(), frame.size(),
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        continue;  // OwnedFd closes it.
      }
      SetNoDelay(owned.get());
      auto conn = std::make_unique<Conn>();
      conn->fd = std::move(owned);
      conn->id = next_conn_id++;
      conn->last_activity = Clock::now();
      if (!AddEpoll(conn->fd.get(), conn->id, EPOLLIN)) {
        hub->rejected->Increment();
        continue;
      }
      hub->accepted->Increment();
      server->active_connections_.fetch_add(1, std::memory_order_relaxed);
      hub->active->Set(static_cast<double>(
          server->active_connections_.load(std::memory_order_relaxed)));
      conns.emplace(conn->id, std::move(conn));
    }
  }

  void DrainWakeups() {
    uint64_t v = 0;
    (void)::read(hub->wake_fd.get(), &v, sizeof(v));
  }

  /// Returns false when the connection was closed.
  bool HandleRead(Conn* c) {
    char buf[kIoChunkBytes];
    while (true) {
      IoOutcome out = ReadSome(c->fd.get(), buf, sizeof(buf));
      if (out.would_block) break;
      if (out.n <= 0) {
        // Peer closed or hard error — mid-frame or not, reclaim
        // everything; in-flight responses become dropped_responses.
        CloseConn(c, /*idle=*/false);
        return false;
      }
      c->rbuf.append(buf, static_cast<size_t>(out.n));
      hub->bytes_in->Increment(static_cast<uint64_t>(out.n));
      c->last_activity = Clock::now();
      if (!ProcessFrames(c)) break;  // Fatal framing error queued.
    }
    return FlushWrites(c);
  }

  /// Parses every complete frame in the read buffer. Returns false once
  /// the stream is unrecoverable (the close is queued behind the final
  /// Error frame).
  bool ProcessFrames(Conn* c) {
    size_t consumed = 0;
    bool ok = true;
    while (!c->close_after_flush) {
      FrameHeader header;
      size_t frame_size = 0;
      auto extracted = TryExtractFrame(
          c->rbuf.data() + consumed, c->rbuf.size() - consumed,
          server->config_.decode_limits, &header, &frame_size);
      if (!extracted.ok()) {
        // Framing is byte-position-dependent: after bad magic or a bogus
        // length there is no resynchronization point, so answer once and
        // hang up.
        hub->decode_failures->Increment();
        QueueError(c, 0, extracted.status());
        c->close_after_flush = true;
        consumed = c->rbuf.size();
        ok = false;
        break;
      }
      if (*extracted == ExtractResult::kNeedMore) break;
      HandleFrame(c, header, c->rbuf.data() + consumed + kFrameHeaderBytes);
      consumed += frame_size;
    }
    if (consumed > 0) c->rbuf.erase(0, consumed);
    return ok;
  }

  void HandleFrame(Conn* c, const FrameHeader& header,
                   const char* payload) {
    hub->frames_in->Increment();
    switch (header.type) {
      case FrameType::kPing:
        QueueFrame(c, EncodePong(header.request_id));
        return;
      case FrameType::kPong:
        return;  // Liveness echo reply; nothing to do.
      case FrameType::kSubmit:
        HandleSubmit(c, header, payload);
        return;
      case FrameType::kResponse:
      case FrameType::kError:
        // Server-to-client types arriving at the server mean the peer is
        // confused about its role; the stream has no future.
        hub->decode_failures->Increment();
        QueueError(c, header.request_id,
                   Status::InvalidArgument(
                       "net: server-bound frame of server-to-client type"));
        c->close_after_flush = true;
        return;
    }
  }

  void HandleSubmit(Conn* c, const FrameHeader& header,
                    const char* payload) {
    auto submit = DecodeSubmit(payload, header.payload_len,
                               server->config_.decode_limits);
    if (!submit.ok()) {
      // The frame boundary itself was sound, so the stream stays usable:
      // reject just this request.
      hub->decode_failures->Increment();
      QueueError(c, header.request_id, submit.status());
      return;
    }
    if (draining) {
      QueueError(c, header.request_id,
                 Status::FailedPrecondition("net: server draining"));
      return;
    }
    serve::InferenceRequest req;
    req.model = std::move(submit->model);
    req.input = std::move(submit->input);
    req.qoi_tolerance = submit->qoi_tolerance;
    if (submit->deadline_ms > 0) {
      req.deadline =
          Clock::now() + std::chrono::milliseconds(submit->deadline_ms);
    }  // Else: InferenceServer stamps its default_timeout on admission.

    c->in_flight += 1;
    hub->in_flight.fetch_add(1, std::memory_order_acq_rel);
    auto hub_ref = server->hub_;  // Keeps the hub alive past Shutdown().
    const uint64_t conn_id = c->id;
    const uint64_t request_id = header.request_id;
    const Clock::time_point dispatch_time = Clock::now();
    Status status = server->server_->SubmitAsync(
        std::move(req),
        [hub_ref, conn_id, request_id,
         dispatch_time](serve::InferenceResponse&& resp) {
          CompletionHub::Completion done;
          done.conn_id = conn_id;
          done.dispatch_time = dispatch_time;
          if (resp.ok()) {
            ResponseFrame rf;
            rf.format = static_cast<uint8_t>(resp.format);
            rf.predicted_qoi_bound = resp.predicted_qoi_bound;
            rf.batch_requests =
                static_cast<uint32_t>(resp.batch_requests);
            rf.batch_rows = static_cast<uint32_t>(resp.batch_rows);
            rf.queue_seconds = resp.queue_seconds;
            rf.total_seconds = resp.total_seconds;
            rf.output = std::move(resp.output);
            done.frame = EncodeResponse(request_id, rf);
          } else {
            done.code = static_cast<uint8_t>(resp.status.code());
            ErrorFrame err;
            err.code = done.code;
            err.message = resp.status.message();
            done.frame = EncodeError(request_id, err);
          }
          hub_ref->Push(std::move(done));
        });
    if (!status.ok()) {
      // Synchronous typed rejection: the callback will never fire.
      c->in_flight -= 1;
      hub->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      QueueError(c, request_id, status);
    }
  }

  void DeliverCompletions() {
    std::vector<CompletionHub::Completion> batch;
    {
      std::lock_guard<std::mutex> lock(hub->mu);
      batch.swap(hub->queue);
    }
    for (auto& done : batch) {
      auto it = conns.find(done.conn_id);
      if (it == conns.end()) {
        // Connection died while the request executed.
        hub->dropped_responses->Increment();
        continue;
      }
      Conn* c = it->second.get();
      c->in_flight -= 1;
      hub->request_seconds->Record(SecondsSince(done.dispatch_time));
      if (done.code != 0) {
        CountErrorFrame(static_cast<StatusCode>(done.code));
      }
      QueueFrame(c, done.frame);
      FlushWrites(c);
    }
  }

  void CountErrorFrame(StatusCode code) {
    hub->error_frames->Increment();
    if (code == StatusCode::kResourceExhausted) {
      hub->backpressure_errors->Increment();
    }
  }

  void QueueError(Conn* c, uint64_t request_id, const Status& status) {
    CountErrorFrame(status.code());
    ErrorFrame err;
    err.code = static_cast<uint8_t>(status.code());
    err.message = status.message();
    QueueFrame(c, EncodeError(request_id, err));
  }

  void QueueFrame(Conn* c, const std::string& frame) {
    hub->frames_out->Increment();
    c->wbuf.append(frame);
  }

  /// Returns false when the connection was closed.
  bool FlushWrites(Conn* c) {
    while (c->wpos < c->wbuf.size()) {
      IoOutcome out = WriteSome(c->fd.get(), c->wbuf.data() + c->wpos,
                                c->wbuf.size() - c->wpos);
      if (out.would_block) break;
      if (out.n <= 0) {
        CloseConn(c, /*idle=*/false);
        return false;
      }
      c->wpos += static_cast<size_t>(out.n);
      hub->bytes_out->Increment(static_cast<uint64_t>(out.n));
      c->last_activity = Clock::now();
    }
    if (c->wpos == c->wbuf.size()) {
      c->wbuf.clear();
      c->wpos = 0;
      if (c->close_after_flush) {
        CloseConn(c, /*idle=*/false);
        return false;
      }
      if (c->want_write) {
        c->want_write = false;
        ModEpoll(*c, EPOLLIN);
      }
    } else {
      if (c->wpos >= kIoChunkBytes) {
        // Compact the flushed prefix so a long-lived slow reader does not
        // pin every byte it was ever sent.
        c->wbuf.erase(0, c->wpos);
        c->wpos = 0;
      }
      if (!c->want_write) {
        c->want_write = true;
        ModEpoll(*c, EPOLLIN | EPOLLOUT);
      }
    }
    return true;
  }

  void SweepIdle() {
    if (conns.empty()) return;
    const Clock::time_point now = Clock::now();
    std::vector<Conn*> expired;
    for (auto& [id, c] : conns) {
      // A connection awaiting a response is the server's debt, not idle;
      // scheduler deadlines bound how long that state can last.
      if (c->in_flight == 0 && now - c->last_activity > idle_timeout) {
        expired.push_back(c.get());
      }
    }
    for (Conn* c : expired) CloseConn(c, /*idle=*/true);
  }

  void CloseConn(Conn* c, bool idle) {
    epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, c->fd.get(), nullptr);
    hub->closed->Increment();
    if (idle) hub->idle_closed->Increment();
    server->active_connections_.fetch_sub(1, std::memory_order_relaxed);
    hub->active->Set(static_cast<double>(
        server->active_connections_.load(std::memory_order_relaxed)));
    conns.erase(c->id);  // Destroys *c and closes the socket.
  }
};

NetServer::NetServer(serve::InferenceServer* server, NetServerConfig config)
    : server_(server), config_(std::move(config)) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  // Reap a previous loop (after Shutdown, or one that died on an epoll
  // error) before rebinding.
  if (loop_thread_.joinable()) loop_thread_.join();
  EF_ASSIGN_OR_RETURN(listener_,
                      ListenTcp(config_.bind_address, config_.port,
                                config_.listen_backlog, &port_));
  hub_ = std::make_shared<CompletionHub>();
  int wake = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake < 0) {
    return Status::IOError(util::StrFormat("net: eventfd failed: %s",
                                           std::strerror(errno)));
  }
  hub_->wake_fd = OwnedFd(wake);
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { RunLoop(); });
  // Surface the owning serve config at bind time: a wire deployment's
  // capacity posture (shards, adaptive SLO) should be readable from one
  // startup line without grepping the serve layer's own logs.
  const serve::ServerConfig& sc = server_->config();
  obs::Logf(obs::LogLevel::kInfo,
            "net: listening on %s:%u (serve: %d registry shards, slo p99 "
            "%.1fms%s)",
            config_.bind_address.c_str(), static_cast<unsigned>(port_),
            sc.registry_shards, sc.slo_p99_seconds * 1e3,
            sc.slo_p99_seconds > 0.0 ? " adaptive" : " fixed-batch");
  return Status::OK();
}

void NetServer::RunLoop() {
  Loop loop(this);
  int efd = epoll_create1(EPOLL_CLOEXEC);
  if (efd < 0) {
    obs::Logf(obs::LogLevel::kError, "net: epoll_create1 failed: %s",
              std::strerror(errno));
    running_.store(false, std::memory_order_release);
    return;
  }
  loop.epoll_fd = OwnedFd(efd);
  loop.Run();
  running_.store(false, std::memory_order_release);
}

Status NetServer::Shutdown() {
  if (!loop_thread_.joinable()) return Status::OK();
  stop_requested_.store(true, std::memory_order_release);
  hub_->Wake();
  loop_thread_.join();
  listener_ = OwnedFd();
  obs::Logf(obs::LogLevel::kInfo, "net: shut down (port %u)",
            static_cast<unsigned>(port_));
  return Status::OK();
}

int64_t NetServer::in_flight_requests() const {
  return hub_ ? hub_->in_flight.load(std::memory_order_acquire) : 0;
}

}  // namespace net
}  // namespace errorflow
