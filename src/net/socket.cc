#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

#include "util/string_util.h"

namespace errorflow {
namespace net {

namespace {

std::mutex g_fault_mu;
SocketFaultHook g_fault_hook;
// Cheap hot-path gate so production I/O never takes the hook mutex.
std::atomic<bool> g_fault_installed{false};

// Returns the hook's verdict for this transfer (default: no fault).
SocketFault ConsultFaultHook(int fd, bool is_write, size_t len) {
  if (!g_fault_installed.load(std::memory_order_acquire)) {
    return SocketFault{};
  }
  std::lock_guard<std::mutex> lock(g_fault_mu);
  if (!g_fault_hook) return SocketFault{};
  return g_fault_hook(fd, is_write, len);
}

Status ErrnoStatus(const char* what) {
  return Status::IOError(util::StrFormat("%s: %s", what,
                                         std::strerror(errno)));
}

}  // namespace

void OwnedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("net: fcntl O_NONBLOCK");
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("net: TCP_NODELAY");
  }
  return Status::OK();
}

Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port,
                          int backlog, uint16_t* bound_port) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return ErrnoStatus("net: socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("net: SO_REUSEADDR");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("net: bad bind address " + address);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return ErrnoStatus("net: bind");
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("net: listen");
  EF_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual),
                      &len) < 0) {
      return ErrnoStatus("net: getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &info) != 0 ||
      info == nullptr) {
    return Status::InvalidArgument("net: cannot resolve host " + host);
  }
  OwnedFd fd(::socket(info->ai_family, info->ai_socktype,
                      info->ai_protocol));
  if (!fd.valid()) {
    ::freeaddrinfo(info);
    return ErrnoStatus("net: socket");
  }
  // Nonblocking connect + poll gives a bounded connect timeout; the socket
  // reverts to blocking for the client's request/response exchanges.
  Status st = SetNonBlocking(fd.get());
  if (!st.ok()) {
    ::freeaddrinfo(info);
    return st;
  }
  int rc = ::connect(fd.get(), info->ai_addr,
                     static_cast<socklen_t>(info->ai_addrlen));
  ::freeaddrinfo(info);
  if (rc < 0 && errno != EINPROGRESS) return ErrnoStatus("net: connect");
  if (rc < 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready <= 0) {
      return Status::DeadlineExceeded("net: connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return ErrnoStatus("net: connect");
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return ErrnoStatus("net: fcntl clear O_NONBLOCK");
  }
  EF_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

IoOutcome ReadSome(int fd, char* buf, size_t len) {
  const SocketFault fault = ConsultFaultHook(fd, /*is_write=*/false, len);
  if (fault.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_us));
  }
  IoOutcome out;
  if (fault.fail) {
    out.n = -1;
    return out;
  }
  const size_t capped = std::min(len, fault.max_bytes);
  if (capped == 0) {
    // Fault truncated to zero: report would-block, not EOF.
    out.n = -1;
    out.would_block = true;
    return out;
  }
  const ssize_t n = ::recv(fd, buf, capped, 0);
  out.n = n;
  out.would_block = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  return out;
}

IoOutcome WriteSome(int fd, const char* buf, size_t len) {
  const SocketFault fault = ConsultFaultHook(fd, /*is_write=*/true, len);
  if (fault.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(fault.delay_us));
  }
  IoOutcome out;
  if (fault.fail) {
    out.n = -1;
    return out;
  }
  const size_t capped = std::min(len, fault.max_bytes);
  if (capped == 0) {
    out.n = -1;
    out.would_block = true;
    return out;
  }
  // MSG_NOSIGNAL: a peer that vanished mid-response must surface as EPIPE,
  // not kill the process with SIGPIPE.
  const ssize_t n = ::send(fd, buf, capped, MSG_NOSIGNAL);
  out.n = n;
  out.would_block = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  return out;
}

void SetSocketFaultHookForTest(SocketFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  g_fault_hook = std::move(hook);
  g_fault_installed.store(static_cast<bool>(g_fault_hook),
                          std::memory_order_release);
}

}  // namespace net
}  // namespace errorflow
