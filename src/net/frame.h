#ifndef ERRORFLOW_NET_FRAME_H_
#define ERRORFLOW_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "tensor/tensor.h"
#include "util/bytes.h"
#include "util/result.h"

namespace errorflow {
namespace net {

/// \name Wire protocol constants (docs/NETWORKING.md has the frame table).
///
/// Every frame is `[header][payload]` with a fixed 18-byte little-endian
/// header: magic (u32), version (u8), frame type (u8), request id (u64),
/// payload length (u32). The magic reads "EFN1" on the wire, so a stray
/// HTTP request or a desynchronized stream fails on the first four bytes
/// instead of being interpreted as a length field.
/// @{
inline constexpr uint32_t kFrameMagic = 0x314E4645u;  // "EFN1" bytes.
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 1 + 8 + 4;
/// Protocol-level payload cap, independent of (and additionally bounded
/// by) the decoder's `DecodeLimits::max_alloc_bytes`. 64 MiB comfortably
/// holds the largest registered input batch while keeping a hostile
/// length field from reserving gigabytes.
inline constexpr uint64_t kMaxFramePayloadBytes = 64ull << 20;
/// Field caps inside payloads; both are also bounded by the bytes
/// actually remaining in the frame.
inline constexpr uint64_t kMaxModelNameBytes = 256;
inline constexpr uint64_t kMaxErrorMessageBytes = 4096;
/// @}

/// \brief Frame kinds. Submit flows client -> server; Response/Error flow
/// server -> client; Ping/Pong is a liveness echo (either direction).
enum class FrameType : uint8_t {
  kSubmit = 1,
  kResponse = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
};

/// True for the enumerators above; anything else on the wire is Corruption.
bool IsValidFrameType(uint8_t raw);

/// \brief Decoded fixed header of one frame.
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

/// \brief Submit payload: one tolerance-tagged inference request.
struct SubmitFrame {
  std::string model;
  /// Absolute QoI tolerance in the server's configured norm.
  double qoi_tolerance = 0.0;
  /// Client time budget in milliseconds; 0 defers to the server's
  /// `ServerConfig::default_timeout` (the shared wire/in-process knob).
  uint32_t deadline_ms = 0;
  tensor::Tensor input;
};

/// \brief Response payload: the admitted request's outcome.
struct ResponseFrame {
  /// Numeric format ordinal the request executed on (quant::NumericFormat).
  uint8_t format = 0;
  double predicted_qoi_bound = 0.0;
  uint32_t batch_requests = 0;
  uint32_t batch_rows = 0;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  tensor::Tensor output;
};

/// \brief Error payload: a typed rejection or failure. `code` carries the
/// StatusCode ordinal so clients can branch on it — queue-full
/// backpressure (kResourceExhausted) is distinguishable from a queue-shed
/// deadline (kDeadlineExceeded) or a malformed request (kInvalidArgument).
struct ErrorFrame {
  uint8_t code = 0;
  std::string message;
};

/// Reconstructs the typed Status an Error frame carried; an out-of-range
/// or kOk ordinal maps to kInternal (an error frame is never OK).
Status WireErrorToStatus(const ErrorFrame& error);

/// \name Encoders. Each returns a complete wire frame (header + payload).
/// @{
std::string EncodeSubmit(uint64_t request_id, const SubmitFrame& submit);
std::string EncodeResponse(uint64_t request_id, const ResponseFrame& resp);
std::string EncodeError(uint64_t request_id, const ErrorFrame& error);
std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
/// Frames a pre-encoded payload (used by the load rig to reuse one encoded
/// Submit payload across request ids without re-serializing the tensor).
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        const std::string& payload);
/// @}

/// \brief Outcome of scanning a receive buffer for one complete frame.
enum class ExtractResult {
  /// The buffer holds a valid prefix of a frame; read more bytes.
  kNeedMore,
  /// A complete frame starts at offset 0; `*frame_size` bytes long.
  kFrame,
};

/// Scans `data[0, size)` for one complete frame. The header is consumed
/// through a `ByteReader` and validated eagerly — bad magic, unsupported
/// version, unknown type, or a payload length exceeding
/// min(kMaxFramePayloadBytes, limits.max_alloc_bytes) returns Corruption
/// immediately, *before* waiting for the claimed payload, so a hostile
/// length field cannot hold a connection's buffer hostage.
Result<ExtractResult> TryExtractFrame(const char* data, size_t size,
                                      const util::DecodeLimits& limits,
                                      FrameHeader* header,
                                      size_t* frame_size);

/// \name Payload decoders. Each consumes `payload[0, len)` through a
/// `ByteReader`, enforces `DecodeLimits` on every untrusted count, and
/// rejects trailing bytes (a length-consistent frame has none).
/// @{
Result<SubmitFrame> DecodeSubmit(const char* payload, size_t len,
                                 const util::DecodeLimits& limits);
Result<ResponseFrame> DecodeResponse(const char* payload, size_t len,
                                     const util::DecodeLimits& limits);
Result<ErrorFrame> DecodeError(const char* payload, size_t len,
                               const util::DecodeLimits& limits);
/// @}

/// \brief A fully decoded frame of any type (fuzz-harness entry point).
struct DecodedFrame {
  FrameHeader header;
  SubmitFrame submit;      // When header.type == kSubmit.
  ResponseFrame response;  // When header.type == kResponse.
  ErrorFrame error;        // When header.type == kError.
};

/// Extracts and fully decodes the first frame in `wire`. Exercises every
/// decode path above; the structure-aware fuzzer drives this directly.
Result<DecodedFrame> DecodeFrame(const std::string& wire,
                                 const util::DecodeLimits& limits =
                                     util::DecodeLimits::Default());

}  // namespace net
}  // namespace errorflow

#endif  // ERRORFLOW_NET_FRAME_H_
