#ifndef ERRORFLOW_NET_NET_SERVER_H_
#define ERRORFLOW_NET_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "util/bytes.h"
#include "util/result.h"

namespace errorflow {
namespace net {

/// \brief Wire-listener tuning. The inference-side knobs (queue depth,
/// batching, formats, default deadline) stay on `serve::ServerConfig`;
/// this struct only shapes the socket layer.
struct NetServerConfig {
  /// Loopback by default: exposing an unauthenticated tensor port beyond
  /// the host is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via `port()` after Start().
  uint16_t port = 0;
  int listen_backlog = 512;
  /// Accepts beyond this cap are answered with a best-effort
  /// kResourceExhausted Error frame and closed.
  int64_t max_connections = 4096;
  /// Connections with no I/O progress and no in-flight request for this
  /// long are closed (slow-loris reclamation). Zero defers to the owning
  /// `serve::ServerConfig::default_timeout` — one knob for wire and
  /// in-process deadlines — resolved at Start().
  std::chrono::milliseconds idle_timeout{0};
  /// Shutdown() waits at most this long for in-flight requests to finish
  /// and response buffers to flush before force-closing.
  std::chrono::milliseconds drain_timeout{5000};
  /// Caps applied to every frame decode (payload length, tensor shape).
  util::DecodeLimits decode_limits;
};

/// \brief TCP front end for an `InferenceServer`: accepts connections,
/// reassembles length-prefixed frames across partial reads, dispatches
/// Submit frames through `InferenceServer::SubmitAsync`, and writes
/// Response/Error frames back, surviving partial writes via per-connection
/// buffers. Single epoll event-loop thread; completions cross back from
/// scheduler threads through an eventfd-signaled queue, so the loop never
/// blocks on inference.
///
/// Every typed admission rejection becomes a wire Error frame carrying the
/// StatusCode ordinal — queue-full backpressure (kResourceExhausted) is
/// distinguishable from a shed deadline or a malformed request. All
/// activity is observable under `errorflow.net.*` (docs/NETWORKING.md).
///
/// Lifecycle: construct over a running (or about-to-run) InferenceServer,
/// Start(), serve, Shutdown(). For a loss-free drain, shut the
/// InferenceServer down *first* (its drain fulfills every in-flight
/// request, which this layer then flushes), then Shutdown() here.
class NetServer {
 public:
  NetServer(serve::InferenceServer* server, NetServerConfig config = {});

  /// Shuts down if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event loop. Idempotent while running;
  /// after a Shutdown() it rebinds (a fresh ephemeral port when
  /// `config.port == 0`) and serves again.
  Status Start();

  /// Graceful drain: stops accepting, waits (bounded by `drain_timeout`)
  /// for in-flight requests to complete and write buffers to flush, then
  /// closes every connection and joins the loop. Idempotent.
  Status Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (after Start()).
  uint16_t port() const { return port_; }

  /// Currently open client connections.
  int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  /// Wire requests dispatched into the InferenceServer and not yet
  /// answered (their completion callback has not fired).
  int64_t in_flight_requests() const;

 private:
  struct Loop;  // Event-loop state, owned by the loop thread.
  struct CompletionHub;

  void RunLoop();

  serve::InferenceServer* server_;
  NetServerConfig config_;
  uint16_t port_ = 0;

  OwnedFd listener_;
  std::shared_ptr<CompletionHub> hub_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int64_t> active_connections_{0};
};

}  // namespace net
}  // namespace errorflow

#endif  // ERRORFLOW_NET_NET_SERVER_H_
