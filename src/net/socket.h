#ifndef ERRORFLOW_NET_SOCKET_H_
#define ERRORFLOW_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "util/result.h"

namespace errorflow {
namespace net {

/// \brief Owning file-descriptor handle; closes on destruction. Movable,
/// not copyable — the usual RAII guard so no error path leaks a socket.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  ~OwnedFd() { Close(); }

  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// Disables Nagle batching; request/response latency over loopback drops
/// from ~40 ms (delayed-ACK interaction) to microseconds.
Status SetNoDelay(int fd);

/// Creates a listening TCP socket bound to `address:port` (port 0 picks an
/// ephemeral port) with SO_REUSEADDR, nonblocking, `backlog` pending
/// connections. `*bound_port` receives the actual port.
Result<OwnedFd> ListenTcp(const std::string& address, uint16_t port,
                          int backlog, uint16_t* bound_port);

/// Blocking TCP connect to `host:port` (numeric or resolvable name) with a
/// connect timeout. The returned socket is blocking with TCP_NODELAY set.
Result<OwnedFd> ConnectTcp(const std::string& host, uint16_t port,
                           std::chrono::milliseconds timeout);

/// \brief One read/write attempt's outcome. `n > 0`: bytes moved;
/// `n == 0`: orderly EOF (reads only); `n < 0`: error, with `would_block`
/// distinguishing EAGAIN/EWOULDBLOCK from a real failure.
struct IoOutcome {
  long n = 0;
  bool would_block = false;
};

/// \name Fault-injectable socket I/O.
///
/// Both the server loop and the client library move bytes exclusively
/// through these wrappers, so the test hook below can truncate a transfer
/// at an arbitrary byte offset, delay it, or fail it outright on either
/// side of the wire — the satellite fault-injection surface.
/// @{
IoOutcome ReadSome(int fd, char* buf, size_t len);
IoOutcome WriteSome(int fd, const char* buf, size_t len);

/// Verdict the hook returns for one I/O attempt.
struct SocketFault {
  /// Cap on bytes moved by this call (short read/write); SIZE_MAX = no cap.
  size_t max_bytes = static_cast<size_t>(-1);
  /// Sleep before the transfer (slow-client simulation).
  int delay_us = 0;
  /// Fail the call as if the peer reset the connection.
  bool fail = false;
};

/// `hook(fd, is_write, len)` runs before every ReadSome/WriteSome transfer.
/// Passing nullptr uninstalls. Test-only: the hook is global and
/// mutex-protected, so install/uninstall from one thread around the traffic
/// under test.
using SocketFaultHook = std::function<SocketFault(int, bool, size_t)>;
void SetSocketFaultHookForTest(SocketFaultHook hook);
/// @}

}  // namespace net
}  // namespace errorflow

#endif  // ERRORFLOW_NET_SOCKET_H_
