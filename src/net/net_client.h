#ifndef ERRORFLOW_NET_NET_CLIENT_H_
#define ERRORFLOW_NET_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "util/bytes.h"
#include "util/result.h"

namespace errorflow {
namespace net {

/// \brief Blocking client for the EFN1 wire protocol: connect, submit one
/// or more requests, await responses by id. Handles partial writes, frame
/// reassembly across partial reads, and out-of-order responses (the batch
/// scheduler completes fused groups, not submission order). Not
/// thread-safe; use one NetClient per thread.
///
/// Error frames come back as the typed Status they carried on the wire, so
/// callers can branch on kResourceExhausted (queue backpressure) vs
/// kDeadlineExceeded (shed) vs kInvalidArgument (malformed request) exactly
/// as an in-process `InferenceServer::Submit` caller would. An error frame
/// with request id 0 is connection-fatal (framing violation, connection
/// cap): it fails every subsequent call.
class NetClient {
 public:
  NetClient() = default;
  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  /// Blocking connect with timeout.
  static Result<NetClient> Connect(
      const std::string& host, uint16_t port,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000),
      util::DecodeLimits limits = util::DecodeLimits::Default());

  /// Sends one Submit frame; returns the assigned request id immediately
  /// without waiting for the response.
  Result<uint64_t> Submit(const SubmitFrame& submit);

  /// Blocks until the response (or typed error) for `request_id` arrives,
  /// buffering any other requests' responses for their own Await calls.
  /// kDeadlineExceeded when `timeout` elapses first.
  Result<ResponseFrame> Await(uint64_t request_id,
                              std::chrono::milliseconds timeout);

  /// Submit + Await in one call.
  Result<ResponseFrame> Roundtrip(const SubmitFrame& submit,
                                  std::chrono::milliseconds timeout);

  /// Liveness echo: sends Ping, waits for the matching Pong.
  Status Ping(std::chrono::milliseconds timeout);

  void Close() { fd_ = OwnedFd(); }
  bool connected() const { return fd_.valid(); }
  /// Raw socket fd — lets the fault-injection hook target one side of the
  /// wire in tests.
  int fd() const { return fd_.get(); }

 private:
  /// Writes all of `bytes`, looping over partial writes.
  Status SendAll(const std::string& bytes);
  /// Waits (bounded by `deadline`) for readable bytes and parses every
  /// complete frame into responses_/errors_/pongs_.
  Status PumpOnce(std::chrono::steady_clock::time_point deadline);

  OwnedFd fd_;
  util::DecodeLimits limits_;
  uint64_t next_id_ = 1;
  std::string rbuf_;
  std::map<uint64_t, ResponseFrame> responses_;
  std::map<uint64_t, Status> errors_;
  std::set<uint64_t> pongs_;
  /// Set once the stream is unrecoverable (id-0 error frame, EOF, frame
  /// corruption); returned by every later call.
  Status conn_error_;
};

}  // namespace net
}  // namespace errorflow

#endif  // ERRORFLOW_NET_NET_CLIENT_H_
