#include "net/load_rig.h"

#include <sys/epoll.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "net/socket.h"
#include "obs/log.h"
#include "util/random.h"
#include "util/string_util.h"

namespace errorflow {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// One multiplexed client connection of the rig.
struct RigConn {
  OwnedFd fd;
  std::string wbuf;
  size_t wpos = 0;
  std::string rbuf;
  bool alive = false;
  bool want_write = false;
};

double MsSince(SteadyClock::time_point start, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string NetLoadStats::Summary() const {
  std::string out;
  out += util::StrFormat("offered %.1f req/s, achieved %.1f req/s over %.2fs\n",
                         offered_rps, achieved_rps, wall_seconds);
  out += util::StrFormat(
      "submitted %llu  completed %llu  rejected %llu (backpressure %llu, "
      "deadline %llu)\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(backpressure),
      static_cast<unsigned long long>(deadline_shed));
  out += util::StrFormat(
      "unanswered %llu  overload-dropped %llu  connect-failures %llu  "
      "conn-errors %llu\n",
      static_cast<unsigned long long>(unanswered),
      static_cast<unsigned long long>(overload_dropped),
      static_cast<unsigned long long>(connect_failures),
      static_cast<unsigned long long>(connection_errors));
  out += util::StrFormat(
      "latency ms: p50 %.3f  p99 %.3f  mean %.3f  max %.3f\n",
      latency_p50_ms, latency_p99_ms, latency_mean_ms, latency_max_ms);
  return out;
}

Result<NetLoadStats> RunNetLoad(const NetLoadConfig& config) {
  if (config.port == 0) {
    return Status::InvalidArgument("net: load rig needs a concrete port");
  }
  if (config.connections < 1) {
    return Status::InvalidArgument("net: load rig needs >= 1 connection");
  }
  if (config.phases.empty()) {
    return Status::InvalidArgument("net: load rig needs >= 1 phase");
  }
  for (const LoadPhase& phase : config.phases) {
    if (phase.seconds <= 0.0 || phase.rate <= 0.0) {
      return Status::InvalidArgument(
          "net: load phase seconds and rate must be positive");
    }
  }

  // The full Poisson arrival schedule, as offsets from the run start.
  // Precomputing keeps the hot loop allocation-free and makes the offered
  // load independent of how fast the engine drains events.
  std::vector<double> arrivals;
  double total_phase_seconds = 0.0;
  {
    util::Rng rng(config.seed);
    double t = 0.0;
    for (const LoadPhase& phase : config.phases) {
      const double phase_end = total_phase_seconds + phase.seconds;
      if (t < total_phase_seconds) t = total_phase_seconds;
      while (true) {
        // Exponential inter-arrival gap; 1-u keeps log() off exact zero.
        t += -std::log(1.0 - rng.UniformDouble()) / phase.rate;
        if (t >= phase_end) break;
        arrivals.push_back(t);
      }
      total_phase_seconds = phase_end;
    }
  }

  NetLoadStats stats;
  stats.offered_rps =
      static_cast<double>(arrivals.size()) / total_phase_seconds;

  std::vector<RigConn> conns(static_cast<size_t>(config.connections));
  int epfd = epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    return Status::IOError(util::StrFormat(
        "net: epoll_create1 failed: %s", std::strerror(errno)));
  }
  OwnedFd epoll_fd(epfd);
  size_t alive_count = 0;
  for (size_t i = 0; i < conns.size(); ++i) {
    auto fd = ConnectTcp(config.host, config.port,
                         std::chrono::milliseconds(5000));
    if (!fd.ok()) {
      stats.connect_failures += 1;
      continue;
    }
    conns[i].fd = std::move(*fd);
    EF_RETURN_IF_ERROR(SetNonBlocking(conns[i].fd.get()));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    if (epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, conns[i].fd.get(), &ev) !=
        0) {
      stats.connect_failures += 1;
      conns[i].fd = OwnedFd();
      continue;
    }
    conns[i].alive = true;
    alive_count += 1;
  }
  if (alive_count == 0) {
    return Status::IOError("net: load rig could not open any connection");
  }

  // Encode the request payload once; per arrival only the 18-byte header
  // (with a fresh request id) is re-framed around it.
  const std::string submit_payload =
      EncodeSubmit(0, config.request).substr(kFrameHeaderBytes);

  const auto mod_epoll = [&](size_t idx, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = idx;
    epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, conns[idx].fd.get(), &ev);
  };
  const auto close_conn = [&](size_t idx) {
    if (!conns[idx].alive) return;
    epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, conns[idx].fd.get(), nullptr);
    conns[idx].fd = OwnedFd();
    conns[idx].alive = false;
    alive_count -= 1;
    stats.connection_errors += 1;
  };
  const auto flush_conn = [&](size_t idx) {
    RigConn& c = conns[idx];
    while (c.wpos < c.wbuf.size()) {
      IoOutcome out = WriteSome(c.fd.get(), c.wbuf.data() + c.wpos,
                                c.wbuf.size() - c.wpos);
      if (out.would_block) break;
      if (out.n <= 0) {
        close_conn(idx);
        return;
      }
      c.wpos += static_cast<size_t>(out.n);
    }
    if (c.wpos == c.wbuf.size()) {
      c.wbuf.clear();
      c.wpos = 0;
      if (c.want_write) {
        c.want_write = false;
        mod_epoll(idx, EPOLLIN);
      }
    } else if (!c.want_write) {
      c.want_write = true;
      mod_epoll(idx, EPOLLIN | EPOLLOUT);
    }
  };

  std::unordered_map<uint64_t, SteadyClock::time_point> outstanding;
  outstanding.reserve(1024);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(arrivals.size());
  uint64_t next_id = 1;
  size_t next_conn = 0;
  size_t arrival_idx = 0;
  const util::DecodeLimits limits = util::DecodeLimits::Default();

  const auto handle_frame = [&](const FrameHeader& header,
                                const char* payload) {
    switch (header.type) {
      case FrameType::kResponse: {
        auto it = outstanding.find(header.request_id);
        if (it == outstanding.end()) return Status::OK();
        // Latency from the *scheduled* arrival: a send stalled behind a
        // full socket buffer still charges the server for the wait.
        latencies_ms.push_back(MsSince(it->second, SteadyClock::now()));
        outstanding.erase(it);
        stats.completed += 1;
        return Status::OK();
      }
      case FrameType::kError: {
        EF_ASSIGN_OR_RETURN(
            ErrorFrame err,
            DecodeError(payload, header.payload_len, limits));
        if (header.request_id == 0) {
          // Connection-scoped refusal; the close follows.
          return Status::OK();
        }
        auto it = outstanding.find(header.request_id);
        if (it == outstanding.end()) return Status::OK();
        outstanding.erase(it);
        stats.rejected += 1;
        const auto code = static_cast<StatusCode>(err.code);
        if (code == StatusCode::kResourceExhausted) {
          stats.backpressure += 1;
        } else if (code == StatusCode::kDeadlineExceeded) {
          stats.deadline_shed += 1;
        }
        return Status::OK();
      }
      case FrameType::kPong:
      case FrameType::kPing:
        return Status::OK();
      case FrameType::kSubmit:
        return Status::Corruption("net: rig received a Submit frame");
    }
    return Status::OK();
  };

  const auto read_conn = [&](size_t idx) {
    RigConn& c = conns[idx];
    char buf[64 * 1024];
    while (c.alive) {
      IoOutcome out = ReadSome(c.fd.get(), buf, sizeof(buf));
      if (out.would_block) break;
      if (out.n <= 0) {
        close_conn(idx);
        return;
      }
      c.rbuf.append(buf, static_cast<size_t>(out.n));
      size_t consumed = 0;
      while (true) {
        FrameHeader header;
        size_t frame_size = 0;
        auto extracted = TryExtractFrame(c.rbuf.data() + consumed,
                                         c.rbuf.size() - consumed, limits,
                                         &header, &frame_size);
        if (!extracted.ok()) {
          close_conn(idx);
          return;
        }
        if (*extracted == ExtractResult::kNeedMore) break;
        Status handled = handle_frame(
            header, c.rbuf.data() + consumed + kFrameHeaderBytes);
        if (!handled.ok()) {
          close_conn(idx);
          return;
        }
        consumed += frame_size;
      }
      if (consumed > 0) c.rbuf.erase(0, consumed);
    }
  };

  const SteadyClock::time_point t0 = SteadyClock::now();
  SteadyClock::time_point drain_deadline{};
  std::vector<epoll_event> events(256);
  while (alive_count > 0) {
    const SteadyClock::time_point now = SteadyClock::now();
    const double elapsed =
        std::chrono::duration<double>(now - t0).count();

    // Fire every arrival whose scheduled time has passed.
    while (arrival_idx < arrivals.size() &&
           arrivals[arrival_idx] <= elapsed) {
      if (static_cast<int64_t>(outstanding.size()) >=
          config.max_outstanding) {
        stats.overload_dropped += 1;
        arrival_idx += 1;
        continue;
      }
      size_t tries = 0;
      while (!conns[next_conn].alive && tries < conns.size()) {
        next_conn = (next_conn + 1) % conns.size();
        tries += 1;
      }
      if (!conns[next_conn].alive) break;  // alive_count check exits.
      const uint64_t id = next_id++;
      conns[next_conn].wbuf.append(
          EncodeFrame(FrameType::kSubmit, id, submit_payload));
      outstanding.emplace(
          id, t0 + std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(
                           arrivals[arrival_idx])));
      stats.submitted += 1;
      flush_conn(next_conn);
      next_conn = (next_conn + 1) % conns.size();
      arrival_idx += 1;
    }

    if (arrival_idx >= arrivals.size()) {
      if (drain_deadline == SteadyClock::time_point{}) {
        drain_deadline = now + config.drain_timeout;
      }
      if (outstanding.empty() || now >= drain_deadline) break;
    }

    int timeout_ms = 20;
    if (arrival_idx < arrivals.size()) {
      const double until_next = arrivals[arrival_idx] - elapsed;
      timeout_ms = std::clamp(
          static_cast<int>(std::ceil(until_next * 1000.0)), 0, 20);
    }
    const int n = epoll_wait(epoll_fd.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      return Status::IOError(util::StrFormat(
          "net: epoll_wait failed: %s", std::strerror(errno)));
    }
    for (int i = 0; i < n; ++i) {
      const size_t idx = static_cast<size_t>(events[i].data.u64);
      if (!conns[idx].alive) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(idx);
        continue;
      }
      if (events[i].events & EPOLLIN) read_conn(idx);
      if (conns[idx].alive && (events[i].events & EPOLLOUT)) {
        flush_conn(idx);
      }
    }
  }

  stats.wall_seconds =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  stats.unanswered = outstanding.size();
  stats.achieved_rps =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.completed) / stats.wall_seconds
          : 0.0;
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    stats.latency_p50_ms = PercentileOfSorted(latencies_ms, 50.0);
    stats.latency_p99_ms = PercentileOfSorted(latencies_ms, 99.0);
    stats.latency_max_ms = latencies_ms.back();
    double sum = 0.0;
    for (double v : latencies_ms) sum += v;
    stats.latency_mean_ms = sum / static_cast<double>(latencies_ms.size());
  }
  obs::Logf(obs::LogLevel::kInfo, "net: load rig done\n%s",
            stats.Summary().c_str());
  return stats;
}

}  // namespace net
}  // namespace errorflow
