#ifndef ERRORFLOW_OBS_LOG_H_
#define ERRORFLOW_OBS_LOG_H_

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace errorflow {
namespace obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// One structured key=value attachment on a log record.
struct LogField {
  std::string key;
  std::string value;
};

/// \brief Leveled logger with a plain-text sink (stderr by default) and an
/// optional JSON-lines file sink. Thread-safe; records below the current
/// level are dropped before formatting.
class Logger {
 public:
  Logger() = default;
  ~Logger();

  void SetLevel(LogLevel level);
  LogLevel level() const;
  bool Enabled(LogLevel level) const { return level >= this->level(); }

  /// Redirects the text sink (nullptr silences it). Caller keeps ownership.
  void SetTextStream(std::FILE* stream);

  /// Opens `path` as a JSON-lines sink: one
  /// {"ts_us": ..., "level": ..., "msg": ..., <fields>} object per line.
  /// Returns false (and logs nothing) if the file cannot be opened.
  bool OpenJsonFile(const std::string& path);
  void CloseJsonFile();

  /// Appends every emitted text line to `*out` (test hook; nullptr
  /// detaches).
  void CaptureForTest(std::string* out);

  void Write(LogLevel level, const std::string& message,
             const std::vector<LogField>& fields = {});

  /// The process-global logger used by EF_LOG / Logf.
  static Logger& Global();

 private:
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kInfo;
  std::FILE* text_stream_ = stderr;
  std::FILE* json_file_ = nullptr;
  std::string* capture_ = nullptr;
};

/// printf-style convenience over Logger::Global().
void Logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_LOG_H_
