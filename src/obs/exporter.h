#ifndef ERRORFLOW_OBS_EXPORTER_H_
#define ERRORFLOW_OBS_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace errorflow {
namespace obs {

struct MetricsExporterOptions {
  /// Output directory; created (recursively) on Start() if missing.
  std::string dir;
  /// Seconds between exports. Clamped to >= 0.01.
  double interval_seconds = 5.0;
  /// File stem: writes <dir>/<prefix>.prom and <dir>/<prefix>.json.
  std::string prefix = "metrics";
  /// Registry to render; defaults to the process-global one.
  MetricsRegistry* registry = &MetricsRegistry::Global();
};

/// \brief Background thread that periodically renders a MetricsRegistry to
/// Prometheus text-exposition and JSON snapshot files.
///
/// Both files are replaced atomically (write to a dot-tmp sibling, then
/// rename), so a scraper never observes a torn snapshot. Start() performs
/// one synchronous export before the thread begins, and Stop() performs a
/// final one, so even sub-interval runs leave fresh files behind.
class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExporterOptions options);
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Creates the directory, writes the first snapshot, and launches the
  /// export thread. Returns false (and starts nothing) when the directory
  /// or files cannot be created. Idempotent while running.
  bool Start();

  /// Stops the thread and writes a final snapshot. Idempotent.
  void Stop();

  /// Renders and atomically replaces both files once; usable without
  /// Start() for one-shot dumps. Returns false on any I/O failure.
  bool ExportOnce();

  /// Number of successful ExportOnce() completions (including the ones
  /// issued by Start()/Stop()).
  uint64_t export_count() const {
    return exports_.load(std::memory_order_relaxed);
  }

  std::string prom_path() const;
  std::string json_path() const;

 private:
  void Loop();

  MetricsExporterOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<uint64_t> exports_{0};
};

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_EXPORTER_H_
