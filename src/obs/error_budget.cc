#include "obs/error_budget.h"

#include <cmath>
#include <limits>

#include "obs/log.h"

namespace errorflow {
namespace obs {

double ErrorBudgetLedger::tightness() const {
  if (!audited || !(admitted_bound > 0.0) || !std::isfinite(achieved_error)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return achieved_error / admitted_bound;
}

bool ErrorBudgetLedger::violation() const {
  const double t = tightness();
  return std::isfinite(t) && t > 1.0;
}

std::string SanitizeMetricComponent(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

void RecordErrorBudget(const ErrorBudgetLedger& ledger, TraceSpan* span,
                       MetricsRegistry* registry) {
  registry->GetCounter("errorflow.bound.ledgers")->Increment();
  // Register eagerly so exporters emit an explicit zero: a scraper must be
  // able to tell "no violations" apart from "not instrumented".
  Counter* violations = registry->GetCounter("errorflow.bound.violations");

  const double tight = ledger.tightness();
  if (ledger.audited) {
    registry->GetCounter("errorflow.bound.audits")->Increment();
    if (std::isfinite(tight)) {
      registry
          ->GetHistogram("errorflow.bound.tightness",
                         Histogram::DefaultRatioBounds())
          ->Record(tight);
      registry
          ->GetHistogram("errorflow.bound.tightness." +
                             SanitizeMetricComponent(ledger.model) + "." +
                             SanitizeMetricComponent(ledger.format),
                         Histogram::DefaultRatioBounds())
          ->Record(tight);
    }
  }

  if (ledger.violation()) {
    violations->Increment();
    char bound_buf[32], achieved_buf[32], tight_buf[32];
    std::snprintf(bound_buf, sizeof(bound_buf), "%.6g",
                  ledger.admitted_bound);
    std::snprintf(achieved_buf, sizeof(achieved_buf), "%.6g",
                  ledger.achieved_error);
    std::snprintf(tight_buf, sizeof(tight_buf), "%.4g", tight);
    Logger::Global().Write(LogLevel::kWarn, "error bound violated",
                           {{"model", ledger.model},
                            {"format", ledger.format},
                            {"admitted_bound", bound_buf},
                            {"achieved_error", achieved_buf},
                            {"tightness", tight_buf}});
  }

  if (span != nullptr) {
    span->Annotate("model", ledger.model);
    span->Annotate("format", ledger.format);
    span->Annotate("admitted_bound", ledger.admitted_bound);
    span->Annotate("compression_term", ledger.compression_term);
    span->Annotate("quant_term", ledger.quant_term);
    if (ledger.audited) {
      span->Annotate("achieved_error", ledger.achieved_error);
      span->Annotate("tightness", tight);
      span->Annotate("violation", ledger.violation());
    }
  }
}

}  // namespace obs
}  // namespace errorflow
