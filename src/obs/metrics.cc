#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace errorflow {
namespace obs {

namespace {

// Shortest round-trippable representation of a double, for JSON. JSON has
// no NaN/Infinity literals, so non-finite values (the NaN min/max of an
// empty histogram) become null.
std::string DoubleToJson(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to %g when it round-trips: keeps the export readable.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double parsed = 0.0;
  if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
    return shorter;
  }
  return buf;
}

// Prometheus sample values: plain shortest decimal; NaN is legal in the
// exposition format and spells "NaN".
std::string PromValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double parsed = 0.0;
  if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
    return shorter;
  }
  return buf;
}

// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
// "errorflow.<subsystem>.<metric>" names map dots (and anything else
// outside the alphabet) to underscores.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    out.push_back(alpha || (digit && i > 0) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::min(100.0, std::max(0.0, p));
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t next = seen + counts[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside bucket b, clamped to the observed [min, max] so
      // a percentile never leaves the recorded range.
      const double lo = std::max(min, b == 0 ? min : bounds[b - 1]);
      const double hi = std::min(max, b < bounds.size() ? bounds[b] : max);
      if (hi <= lo) return hi;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(counts[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen = next;
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  if (earlier.count == 0) return *this;
  if (earlier.bounds != bounds || earlier.counts.size() != counts.size() ||
      earlier.count > count) {
    return *this;
  }
  HistogramSnapshot window;
  window.bounds = bounds;
  window.counts.resize(counts.size());
  for (size_t b = 0; b < counts.size(); ++b) {
    if (earlier.counts[b] > counts[b]) return *this;  // Reset in between.
    window.counts[b] = counts[b] - earlier.counts[b];
  }
  window.count = count - earlier.count;
  window.sum = sum - earlier.sum;
  if (window.count == 0) {
    window.min = std::numeric_limits<double>::quiet_NaN();
    window.max = std::numeric_limits<double>::quiet_NaN();
  } else {
    // Cumulative envelope: per-window extrema are not tracked.
    window.min = min;
    window.max = max;
  }
  return window;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Record(double value) {
  const size_t bucket =
      static_cast<size_t>(std::upper_bound(bounds_.begin(), bounds_.end(),
                                           value) -
                          bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  counts_[bucket]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_++;
  sum_ += value;
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  if (count_ == 0) {
    // No observations: there is no min/max. NaN is unambiguous where the
    // old default of 0.0 silently looked like a recorded sample.
    snap.min = snap.max = std::numeric_limits<double>::quiet_NaN();
  } else {
    snap.min = min_;
    snap.max = max_;
  }
  return snap;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

std::vector<double> Histogram::DefaultDurationBounds() {
  // 1 us .. 64 s in x4 steps: 14 finite buckets + overflow.
  std::vector<double> bounds;
  for (double b = 1e-6; b < 100.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::DefaultCountBounds() {
  // 1 .. 1024 in x2 steps: 11 finite buckets + overflow.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1024.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::DefaultRatioBounds() {
  // Log-spaced below 1 (tightness is usually far under the bound), then a
  // hard 1.0 edge so violations (> 1) land strictly past it.
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025,
          0.05, 0.1,    0.25, 0.5,  0.75,   0.9,  1.0,  2.0,
          4.0};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

bool MetricsRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.count(name) != 0 || gauges_.count(name) != 0 ||
         histograms_.count(name) != 0;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

HistogramSnapshot MetricsRegistry::HistogramSnapshotOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second->Snapshot();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + Quote(name) + ": " + std::to_string(c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + Quote(name) + ": " + DoubleToJson(g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->Snapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + Quote(name) + ": {\"count\": " + std::to_string(s.count) +
           ", \"sum\": " + DoubleToJson(s.sum) +
           ", \"min\": " + DoubleToJson(s.min) +
           ", \"max\": " + DoubleToJson(s.max) +
           ", \"p50\": " + DoubleToJson(s.p50()) +
           ", \"p95\": " + DoubleToJson(s.p95()) +
           ", \"p99\": " + DoubleToJson(s.p99()) + ", \"buckets\": [";
    for (size_t b = 0; b < s.counts.size(); ++b) {
      if (b) out += ", ";
      const std::string le =
          b < s.bounds.size() ? DoubleToJson(s.bounds[b]) : "\"inf\"";
      out += "{\"le\": " + le + ", \"count\": " + std::to_string(s.counts[b]) +
             "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(line, sizeof(line), "counter   %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(line, sizeof(line), "gauge     %-44s %.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->Snapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %-44s count=%llu sum=%.6g p50=%.3g p95=%.3g "
                  "p99=%.3g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.p50(), s.p95(), s.p99());
    out += line;
  }
  return out;
}

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + PromValue(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->Snapshot();
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < s.counts.size(); ++b) {
      cumulative += s.counts[b];
      const std::string le =
          b < s.bounds.size() ? PromValue(s.bounds[b]) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + PromValue(s.sum) + "\n";
    out += prom + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace errorflow
