#ifndef ERRORFLOW_OBS_ERROR_BUDGET_H_
#define ERRORFLOW_OBS_ERROR_BUDGET_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace errorflow {
namespace obs {

/// \brief Per-request error-budget record: what bound a request was
/// admitted against, how the bound decomposed, and (when an audit ran)
/// what error was actually achieved.
///
/// Plain data by design — `obs` depends on nothing else in the repo, so
/// the format is carried as its canonical lowercase string rather than a
/// quant enum. Producers fill what they know; RecordErrorBudget() turns
/// the ledger into `errorflow.bound.*` metrics, a structured log on
/// violation, and (optionally) trace-span annotations.
struct ErrorBudgetLedger {
  std::string model;
  std::string format;  ///< "fp32", "tf32", "fp16", "bf16", "int8", ...

  /// Absolute QoI-error bound the request was admitted against.
  double admitted_bound = 0.0;
  /// Decomposition of the admitted bound (see core::BoundAttribution):
  /// compression-input term + summed per-layer quantization shares.
  double compression_term = 0.0;
  double quant_term = 0.0;

  /// Measured QoI error vs the full-precision reference, in the same norm
  /// as `admitted_bound`. Only meaningful when `audited`.
  double achieved_error = 0.0;
  /// True when an audit actually measured `achieved_error`; admission-only
  /// ledgers leave this false and contribute no tightness sample.
  bool audited = false;

  /// achieved_error / admitted_bound: < 1 means the bound held with slack,
  /// > 1 is a violation. NaN when not audited or the bound is not positive.
  double tightness() const;
  /// True when an audit measured more error than the admitted bound.
  bool violation() const;
};

/// Aggregates one ledger into the registry:
///   errorflow.bound.ledgers               counter, every call
///   errorflow.bound.audits                counter, audited ledgers
///   errorflow.bound.violations            counter, audited & violated
///   errorflow.bound.tightness             histogram of tightness()
///   errorflow.bound.tightness.<model>.<format>  per model x format
/// A violation additionally emits a structured warn log. When `span` is
/// non-null the ledger is annotated onto it (model, format, bound,
/// achieved, tightness, violation), so per-request provenance lands in
/// the trace alongside the timing.
void RecordErrorBudget(const ErrorBudgetLedger& ledger,
                       TraceSpan* span = nullptr,
                       MetricsRegistry* registry = &MetricsRegistry::Global());

/// Lowercases `s` and maps anything outside [a-z0-9_] to '_', so model
/// names can be embedded as metric-name components.
std::string SanitizeMetricComponent(const std::string& s);

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_ERROR_BUDGET_H_
