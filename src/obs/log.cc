#include "obs/log.h"

#include <cstdarg>

#include "obs/trace.h"

namespace errorflow {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

Logger::~Logger() { CloseJsonFile(); }

void Logger::SetLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

void Logger::SetTextStream(std::FILE* stream) {
  std::lock_guard<std::mutex> lock(mu_);
  text_stream_ = stream;
}

bool Logger::OpenJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (json_file_ != nullptr) std::fclose(json_file_);
  json_file_ = f;
  return true;
}

void Logger::CloseJsonFile() {
  std::lock_guard<std::mutex> lock(mu_);
  if (json_file_ != nullptr) {
    std::fclose(json_file_);
    json_file_ = nullptr;
  }
}

void Logger::CaptureForTest(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = out;
}

void Logger::Write(LogLevel level, const std::string& message,
                   const std::vector<LogField>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (level < level_) return;

  std::string text = "[";
  text += LogLevelName(level);
  text += "] ";
  text += message;
  for (const LogField& f : fields) {
    text += " ";
    text += f.key;
    text += "=";
    text += f.value;
  }
  text += "\n";
  if (text_stream_ != nullptr) {
    std::fputs(text.c_str(), text_stream_);
    std::fflush(text_stream_);
  }
  if (capture_ != nullptr) *capture_ += text;

  if (json_file_ != nullptr) {
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%.3f", NowMicros());
    std::string json = "{\"ts_us\": ";
    json += ts;
    json += ", \"level\": \"";
    json += LogLevelName(level);
    json += "\", \"msg\": \"" + JsonEscape(message) + "\"";
    for (const LogField& f : fields) {
      json += ", \"" + JsonEscape(f.key) + "\": \"" + JsonEscape(f.value) +
              "\"";
    }
    json += "}\n";
    std::fputs(json.c_str(), json_file_);
    std::fflush(json_file_);
  }
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logf(LogLevel level, const char* fmt, ...) {
  Logger& logger = Logger::Global();
  if (!logger.Enabled(level)) return;
  va_list ap;
  va_start(ap, fmt);
  char stack_buf[512];
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  va_end(ap);
  if (n < 0) return;
  if (static_cast<size_t>(n) < sizeof(stack_buf)) {
    logger.Write(level, stack_buf);
    return;
  }
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(ap, fmt);
  std::vsnprintf(big.data(), big.size(), fmt, ap);
  va_end(ap);
  big.resize(static_cast<size_t>(n));
  logger.Write(level, big);
}

}  // namespace obs
}  // namespace errorflow
