#ifndef ERRORFLOW_OBS_METRICS_H_
#define ERRORFLOW_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace errorflow {
namespace obs {

/// \brief Monotonic event counter. Lock-free; exact under concurrency.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-written scalar (e.g. queue depth, current loss).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // fetch_add on atomic<double> requires C++20 library support that gcc
    // only provides on some targets; CAS-loop instead.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Immutable view of a histogram at one point in time.
///
/// An empty snapshot (`count == 0`) has no observed range: min/max and
/// every percentile are NaN (check `count` or std::isnan before use; the
/// JSON export renders them as null). With one sample, min == max ==
/// every percentile == that sample.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets; an implicit +inf bucket follows.
  std::vector<double> bounds;
  /// counts.size() == bounds.size() + 1.
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // NaN when count == 0.
  double max = 0.0;  // NaN when count == 0.

  /// Percentile in [0, 100] by linear interpolation inside the bucket;
  /// NaN when the snapshot is empty.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  /// The window of samples recorded between `earlier` and this snapshot:
  /// per-bucket counts, count, and sum are exact differences, so
  /// Percentile() describes only the window — the signal an adaptive
  /// controller needs, where the cumulative histogram would blend in
  /// ancient history. min/max keep this snapshot's cumulative envelope
  /// (per-window extrema are not tracked), which is conservative for the
  /// percentile clamp. If `earlier` is not an older snapshot of the same
  /// histogram (bucket mismatch, or counts that went backwards across a
  /// Reset), returns *this unchanged.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// \brief Fixed-bucket histogram. Recording takes a short per-histogram
/// lock; counts and sum are exact.
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bucket edges.
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Default duration buckets: 1 us to ~100 s, roughly x4 per step.
  static std::vector<double> DefaultDurationBounds();

  /// Power-of-two count buckets (1, 2, 4, ... 1024) for cardinality-style
  /// histograms such as batch sizes and fan-out counts.
  static std::vector<double> DefaultCountBounds();

  /// Buckets for dimensionless ratios in (0, inf) such as the
  /// achieved-error / admitted-bound tightness: log-spaced below 1 with an
  /// explicit 1.0 edge, so everything past the 1.0 bucket is a violation.
  static std::vector<double> DefaultRatioBounds();

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Thread-safe registry of named counters, gauges, and histograms.
///
/// Get* returns a stable pointer that callers may cache for the process
/// lifetime: Reset() zeroes metrics in place and never invalidates
/// pointers, so instrumentation sites can hold onto them across test
/// resets. Names follow "errorflow.<subsystem>.<metric>" (see
/// docs/OBSERVABILITY.md).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// First call fixes the bucket bounds; later calls ignore `bounds`.
  Histogram* GetHistogram(
      const std::string& name,
      std::vector<double> bounds = Histogram::DefaultDurationBounds());

  /// True if a metric with this name exists (any kind).
  bool Has(const std::string& name) const;

  // Read-only lookups; missing names yield 0 / an empty snapshot.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  HistogramSnapshot HistogramSnapshotOf(const std::string& name) const;

  /// Zeroes every metric in place. Pointers stay valid (test hook).
  void Reset();

  /// Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Non-finite values (e.g. the NaN min/max of an empty histogram) render
  /// as null, keeping the output strict JSON.
  std::string ToJson() const;
  /// One metric per line, for terminal output.
  std::string ToText() const;
  /// Prometheus text exposition format (version 0.0.4): names sanitized to
  /// [a-zA-Z0-9_:], counters/gauges as single samples, histograms as
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
  std::string ToPrometheus() const;

  /// The process-global registry used by the built-in instrumentation.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  // std::map for deterministic export ordering.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_METRICS_H_
