#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

namespace errorflow {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessStart() {
  static const Clock::time_point start = Clock::now();
  return start;
}

// Touches the epoch early so NowMicros() is monotone from first use.
const bool kEpochInit = (ProcessStart(), true);

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double NowMicros() {
  (void)kEpochInit;
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   ProcessStart())
      .count();
}

void TraceBuffer::Record(TraceEvent event) {
  Shard& shard = shards_[CurrentThreadId() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() < shard.capacity) {
    shard.events.push_back(std::move(event));
    return;
  }
  // Ring is full: overwrite the oldest slot in this shard.
  shard.events[shard.next] = std::move(event);
  shard.next = (shard.next + 1) % shard.capacity;
  shard.dropped++;
}

std::vector<TraceEvent> TraceBuffer::Snapshot() const {
  std::vector<TraceEvent> all;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    all.insert(all.end(), shard.events.begin(), shard.events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return all;
}

size_t TraceBuffer::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.events.size();
  }
  return n;
}

uint64_t TraceBuffer::dropped() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.dropped;
  }
  return n;
}

void TraceBuffer::SetCapacity(size_t capacity) {
  const size_t per_shard = std::max<size_t>(1, capacity / kShards);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
    shard.next = 0;
    shard.dropped = 0;
    shard.capacity = per_shard;
  }
}

void TraceBuffer::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
    shard.next = 0;
    shard.dropped = 0;
  }
}

std::string TraceBuffer::ToChromeJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "[";
  char buf[128];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += i ? ",\n " : "\n ";
    out += "{\"name\": \"" + JsonEscape(e.name) + "\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf),
                  ", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                  e.ts_us, e.dur_us, e.tid);
    out += buf;
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a) out += ", ";
        // Values were rendered to JSON at Annotate() time.
        out += "\"" + JsonEscape(e.args[a].first) + "\": " + e.args[a].second;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string TraceBuffer::Summary() const {
  struct Agg {
    uint64_t count = 0;
    double total_us = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Snapshot()) {
    Agg& a = by_name[e.name];
    a.count++;
    a.total_us += e.dur_us;
  }
  std::string out;
  char line[192];
  for (const auto& [name, a] : by_name) {
    std::snprintf(line, sizeof(line),
                  "%-40s count=%-8llu total=%10.3f ms  mean=%10.3f ms\n",
                  name.c_str(), static_cast<unsigned long long>(a.count),
                  a.total_us / 1e3,
                  a.total_us / 1e3 / static_cast<double>(a.count));
    out += line;
  }
  return out;
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceSpan::TraceSpan(std::string name, TraceBuffer* buffer)
    : name_(std::move(name)), buffer_(buffer), start_us_(NowMicros()) {}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::Annotate(const std::string& key, const std::string& value) {
  if (ended_) return;
  args_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void TraceSpan::Annotate(const std::string& key, const char* value) {
  Annotate(key, std::string(value));
}

void TraceSpan::Annotate(const std::string& key, double value) {
  if (ended_) return;
  char buf[48];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  args_.emplace_back(key, buf);
}

void TraceSpan::Annotate(const std::string& key, uint64_t value) {
  if (ended_) return;
  args_.emplace_back(key, std::to_string(value));
}

void TraceSpan::Annotate(const std::string& key, int64_t value) {
  if (ended_) return;
  args_.emplace_back(key, std::to_string(value));
}

void TraceSpan::Annotate(const std::string& key, bool value) {
  if (ended_) return;
  args_.emplace_back(key, value ? "true" : "false");
}

void TraceSpan::End() {
  if (ended_) return;
  ended_ = true;
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = start_us_;
  event.dur_us = NowMicros() - start_us_;
  event.tid = CurrentThreadId();
  event.args = std::move(args_);
  buffer_->Record(std::move(event));
}

}  // namespace obs
}  // namespace errorflow
