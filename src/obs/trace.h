#ifndef ERRORFLOW_OBS_TRACE_H_
#define ERRORFLOW_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace errorflow {
namespace obs {

/// \brief One completed span: a Chrome trace_event "X" (complete) event.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< Start, microseconds since process start.
  double dur_us = 0.0;  ///< Duration, microseconds.
  uint32_t tid = 0;     ///< Small sequential id, stable per thread.
  /// Span annotations exported as the Chrome "args" object. Values are
  /// pre-rendered JSON (already quoted/escaped for strings), so the
  /// exporter can emit them verbatim.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Small sequential id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Used as the trace "tid" so exports stay
/// readable.
uint32_t CurrentThreadId();

/// Microseconds since process start on the monotonic clock.
double NowMicros();

/// \brief Lock-sharded in-memory ring buffer of completed spans.
///
/// Writers append to the shard picked by their thread id, so concurrent
/// spans on different threads rarely contend. Snapshot() merges and sorts
/// by start time. Each shard is a bounded ring: once a shard reaches its
/// share of the capacity, new events overwrite the oldest in that shard
/// and `dropped()` counts the overwritten ones — long-running serving
/// cannot grow the buffer without bound.
class TraceBuffer {
 public:
  /// Total capacity is split evenly across the shards (so the effective
  /// per-shard cap is capacity / 16, min 1). Default: 262144 events.
  static constexpr size_t kDefaultCapacity = 262144;

  void Record(TraceEvent event);

  /// All retained events, sorted by start timestamp.
  std::vector<TraceEvent> Snapshot() const;

  size_t size() const;
  /// Events overwritten because a shard ring was full.
  uint64_t dropped() const;
  /// Clears the buffer and installs a new total capacity.
  void SetCapacity(size_t capacity);
  void Reset();

  /// Chrome trace_event JSON array (load in chrome://tracing or Perfetto):
  /// [{"name": ..., "ph": "X", "ts": ..., "dur": ..., "pid": 1, "tid": ...}]
  std::string ToChromeJson() const;

  /// Flat per-name aggregate: count, total ms, mean ms.
  std::string Summary() const;

  /// The process-global buffer used by the built-in instrumentation.
  static TraceBuffer& Global();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    /// Ring storage: grows until `capacity`, then wraps at `next`.
    std::vector<TraceEvent> events;
    size_t next = 0;
    uint64_t dropped = 0;
    /// Per-shard cap; written only with every shard mutex held.
    size_t capacity = kDefaultCapacity / kShards;
  };
  std::array<Shard, kShards> shards_;
};

/// \brief RAII span: records name/start/duration/thread-id into a
/// TraceBuffer when it goes out of scope.
///
///   {
///     obs::TraceSpan span("pipeline.compress");
///     ...work...
///   }  // recorded here
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     TraceBuffer* buffer = &TraceBuffer::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// \name Annotations, exported as the Chrome trace "args" object.
  /// Attach per-request context (model, format, bound, tightness) to the
  /// span; no-ops after End().
  /// @{
  void Annotate(const std::string& key, const std::string& value);
  void Annotate(const std::string& key, const char* value);
  void Annotate(const std::string& key, double value);
  void Annotate(const std::string& key, uint64_t value);
  void Annotate(const std::string& key, int64_t value);
  void Annotate(const std::string& key, bool value);
  /// @}

  /// Closes the span early (idempotent).
  void End();

 private:
  std::string name_;
  TraceBuffer* buffer_;
  double start_us_;
  bool ended_ = false;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_TRACE_H_
