#ifndef ERRORFLOW_OBS_TRACE_H_
#define ERRORFLOW_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace errorflow {
namespace obs {

/// \brief One completed span: a Chrome trace_event "X" (complete) event.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< Start, microseconds since process start.
  double dur_us = 0.0;  ///< Duration, microseconds.
  uint32_t tid = 0;     ///< Small sequential id, stable per thread.
};

/// Small sequential id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Used as the trace "tid" so exports stay
/// readable.
uint32_t CurrentThreadId();

/// Microseconds since process start on the monotonic clock.
double NowMicros();

/// \brief Lock-sharded in-memory buffer of completed spans.
///
/// Writers append to the shard picked by their thread id, so concurrent
/// spans on different threads rarely contend. Snapshot() merges and sorts
/// by start time.
class TraceBuffer {
 public:
  void Record(TraceEvent event);

  /// All events so far, sorted by start timestamp.
  std::vector<TraceEvent> Snapshot() const;

  size_t size() const;
  void Reset();

  /// Chrome trace_event JSON array (load in chrome://tracing or Perfetto):
  /// [{"name": ..., "ph": "X", "ts": ..., "dur": ..., "pid": 1, "tid": ...}]
  std::string ToChromeJson() const;

  /// Flat per-name aggregate: count, total ms, mean ms.
  std::string Summary() const;

  /// The process-global buffer used by the built-in instrumentation.
  static TraceBuffer& Global();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };
  std::array<Shard, kShards> shards_;
};

/// \brief RAII span: records name/start/duration/thread-id into a
/// TraceBuffer when it goes out of scope.
///
///   {
///     obs::TraceSpan span("pipeline.compress");
///     ...work...
///   }  // recorded here
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     TraceBuffer* buffer = &TraceBuffer::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span early (idempotent).
  void End();

 private:
  std::string name_;
  TraceBuffer* buffer_;
  double start_us_;
  bool ended_ = false;
};

}  // namespace obs
}  // namespace errorflow

#endif  // ERRORFLOW_OBS_TRACE_H_
