#include "obs/exporter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "obs/log.h"

namespace errorflow {
namespace obs {

namespace {

// Writes `content` to `path` atomically: a unique dot-tmp sibling in the
// same directory (same filesystem, so rename is atomic), fflush, rename.
bool AtomicWriteFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

MetricsExporter::MetricsExporter(MetricsExporterOptions options)
    : options_(std::move(options)) {
  options_.interval_seconds = std::max(0.01, options_.interval_seconds);
}

MetricsExporter::~MetricsExporter() { Stop(); }

std::string MetricsExporter::prom_path() const {
  return options_.dir + "/" + options_.prefix + ".prom";
}

std::string MetricsExporter::json_path() const {
  return options_.dir + "/" + options_.prefix + ".json";
}

bool MetricsExporter::ExportOnce() {
  const std::string prom = options_.registry->ToPrometheus();
  const std::string json = options_.registry->ToJson();
  if (!AtomicWriteFile(prom_path(), prom) ||
      !AtomicWriteFile(json_path(), json)) {
    return false;
  }
  exports_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool MetricsExporter::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    Logf(LogLevel::kError, "metrics exporter: cannot create %s: %s",
         options_.dir.c_str(), ec.message().c_str());
    return false;
  }
  if (!ExportOnce()) {
    Logf(LogLevel::kError, "metrics exporter: cannot write %s",
         prom_path().c_str());
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
    running_ = true;
  }
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  ExportOnce();  // Final flush so the files reflect the full run.
}

void MetricsExporter::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    if (!ExportOnce()) {
      Logf(LogLevel::kWarn, "metrics exporter: export to %s failed",
           options_.dir.c_str());
    }
    lock.lock();
  }
}

}  // namespace obs
}  // namespace errorflow
