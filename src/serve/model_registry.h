#ifndef ERRORFLOW_SERVE_MODEL_REGISTRY_H_
#define ERRORFLOW_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/error_bound.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "quant/format.h"
#include "util/result.h"

namespace errorflow {
namespace serve {

/// \brief Registry configuration.
struct RegistryConfig {
  /// Upper bound on the resident bytes of cached quantized variants
  /// (base models are excluded from the budget), split evenly across the
  /// shards: each shard evicts its own least-recently-used variants once
  /// its `max_variant_bytes / num_shards` share is exceeded. In-flight
  /// executions keep their variant alive through the returned shared_ptr.
  int64_t max_variant_bytes = 256ll << 20;
  /// When true, every cache hit re-verifies the variant's weight checksum
  /// before leasing it; a mismatch (bit rot, stray write) drops the variant
  /// and transparently re-quantizes from the FP32 base. The checksum pass
  /// runs *outside* the shard lock, so concurrent leases — even of the
  /// same variant — never serialize behind it; it still costs one
  /// serialization pass per hit, so it is off by default and meant for
  /// deployments that prize integrity over lease latency.
  bool verify_variants = false;
  /// Variant-cache shards. The cache key (model, format) hashes to a
  /// shard; each shard has its own mutex, LRU clock, and byte-budget
  /// share, so leases for different variants proceed in parallel instead
  /// of convoying on one registry-wide lock. Clamped to >= 1.
  int num_shards = 8;
  /// Data-driven INT8 weight quantizer offered alongside the Table-I
  /// max-affine variants. kMaxAffine (the default) disables the feature
  /// entirely: no calibration pass at Register, no extra variant keys.
  /// kOptq/kSpfq makes Register run one calibration forward pass and
  /// cache the per-layer effective steps, so admission can price the
  /// tighter data-driven INT8 bound without materializing the variant.
  quant::WeightQuantizer data_driven_quantizer =
      quant::WeightQuantizer::kMaxAffine;
  /// Rows of the synthesized uniform [-1, 1] calibration batch used when
  /// Register is not handed one explicitly (served inputs are normalized
  /// to [-1, 1], so the synthetic batch approximates the serving
  /// distribution). Note the caveat this implies: the data-driven bound
  /// is conditional on serving inputs resembling the calibration data —
  /// weaker than the worst-case Table-I admission guarantee. Prefer the
  /// explicit-calibration Register overload with representative data;
  /// the FP32 watchdog audits the residual risk either way
  /// (docs/QUANTIZATION.md).
  int64_t calibration_samples = 64;
  /// Seed of the synthesized calibration batch; fixed so the cached steps
  /// and every later materialization agree bit-exactly.
  uint64_t calibration_seed = 0xca11b8a7c4ull;
};

/// \brief Owns the served models, their error-flow analyses, and a
/// hash-sharded, bounded LRU cache of lazily materialized quantized
/// variants.
///
/// DeepSZ-style serving keeps several quantized copies of a model resident
/// and selects among them per request error budget; this registry is that
/// store. A variant is quantized once on first use and found by key
/// (model, format) afterwards — the `errorflow.serve.registry.quantize_count`
/// counter stays flat across repeated same-format requests.
///
/// Scaling structure: base models (FP32, PSN-folded) live in a
/// read-mostly table of their own — entries are never removed, so a
/// looked-up `Entry*` is stable for the registry's lifetime and any
/// shard's materialization path can lease the hot FP32 base without
/// touching other shards. Cached variants hash by (model, format) to one
/// of `num_shards` shards, each with an independent mutex, LRU clock, and
/// byte budget; per-shard traffic is observable under
/// `errorflow.serve.registry.shard.<i>.*`. Expensive work — quantization
/// on a miss, checksum verification on a verified hit — runs outside the
/// shard lock; racing materializations of the same key are reconciled at
/// insert (first insert wins, the loser leases the winner's variant).
///
/// Thread-safe. Variants hold PSN-folded models, and inference Forward on
/// folded layers mutates no shared layer state (spectral caches are
/// mutex-guarded and the effective weight is a zero-copy reference), so any
/// number of BatchScheduler workers may execute the *same* variant
/// concurrently — no per-variant serialization. Power iteration runs once
/// at Register (profiling + fold), never per request; tests pin this down
/// via the `errorflow.spectral.power_iterations` counter.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryConfig config = {});

  /// \brief Immutable per-model record: the FP32 base (PSN folded), the
  /// error-flow analysis used by admission, and the execution-model inputs.
  struct Entry {
    nn::Model base;
    core::ErrorFlowAnalysis analysis;
    tensor::Shape single_input_shape;
    int64_t flops_per_sample = 0;
    int64_t bytes_per_sample = 0;
    /// Calibration batch for the data-driven quantizer (empty when the
    /// registry runs max-affine only). Kept so GetVariant can rematerialize
    /// the variant bit-identically after an eviction or invalidation.
    tensor::Tensor calibration;
    /// Per-layer effective steps of the data-driven INT8 variant, in StepFn
    /// traversal order (quant::OptqEffectiveSteps), priced once at
    /// Register. Empty when data-driven quantization is disabled.
    std::vector<double> optq_steps;

    Entry(nn::Model base_model, core::ErrorFlowAnalysis model_analysis,
          tensor::Shape shape)
        : base(std::move(base_model)),
          analysis(std::move(model_analysis)),
          single_input_shape(std::move(shape)) {}
  };

  /// \brief One materialized quantized clone. The model is always
  /// PSN-folded, so concurrent Predict calls on one variant are safe and
  /// lock-free.
  struct Variant {
    quant::NumericFormat format = quant::NumericFormat::kFP32;
    /// Weight quantizer that produced the variant: kMaxAffine for the
    /// Table-I family, kOptq/kSpfq for the data-driven INT8 variants.
    quant::WeightQuantizer quantizer = quant::WeightQuantizer::kMaxAffine;
    nn::Model model;
    int64_t resident_bytes = 0;
    /// FNV-1a over the serialized model, taken at materialization; consulted
    /// on hits when `RegistryConfig::verify_variants` is set.
    uint64_t checksum = 0;
  };

  /// Fault-injection hook: consulted at the top of every variant
  /// materialization; a non-OK return aborts the quantize and surfaces as a
  /// typed Status from GetVariant. Lets tests pin down that a failed
  /// materialization never crashes a worker. Test-only.
  using MaterializeFaultHook =
      std::function<Status(const std::string& name, quant::NumericFormat)>;

  /// Observation hook invoked at the start of every checksum verification
  /// pass, after the shard lock has been released. Lets tests pin down
  /// that verification does not hold the shard lock (a blocking hook must
  /// not stall other leases on the same shard). Test-only.
  using VerifyHook =
      std::function<void(const std::string& name, quant::NumericFormat)>;

  /// Content checksum used for variant integrity (FNV-1a over
  /// nn::SerializeModel). Exposed so tests can compute expected values.
  static uint64_t ChecksumModel(const nn::Model& model);

  /// Profiles `model` (folding PSN afterwards) and takes ownership.
  /// `single_input_shape` as in core::ProfileModel. Fails with
  /// kAlreadyExists on duplicate names. When the registry is configured
  /// with a data-driven quantizer, a uniform [-1, 1] calibration batch is
  /// synthesized (RegistryConfig::calibration_samples/seed) and the
  /// variant's effective steps are priced here, once.
  Status Register(std::string name, nn::Model model,
                  tensor::Shape single_input_shape);

  /// Register with an explicit calibration batch (first dimension is the
  /// sample count; trailing dimensions must match `single_input_shape` —
  /// a non-empty mismatched batch is rejected with kInvalidArgument).
  /// Only consulted when a data-driven quantizer is configured. Prefer
  /// this overload with representative serving data: the data-driven
  /// bound is conditional on the calibration distribution (see
  /// docs/QUANTIZATION.md), so the closer the batch is to real traffic,
  /// the more the admitted bound means.
  Status Register(std::string name, nn::Model model,
                  tensor::Shape single_input_shape,
                  tensor::Tensor calibration);

  /// The registered record, or kNotFound. The pointer stays valid for the
  /// registry's lifetime (entries are never removed).
  Result<const Entry*> Lookup(const std::string& name) const;

  /// Returns the cached variant for (name, format, quantizer),
  /// materializing it on first use. kFP32 yields a plain clone of the base
  /// so execution always goes through a variant lease. A non-kMaxAffine
  /// `quantizer` is only meaningful with kINT8 (data-driven INT8) and
  /// requires the model to have been registered under a data-driven
  /// registry config; materialization is deterministic, so a
  /// rematerialized variant is bit-identical to the one admission priced.
  Result<std::shared_ptr<Variant>> GetVariant(
      const std::string& name, quant::NumericFormat format,
      quant::WeightQuantizer quantizer = quant::WeightQuantizer::kMaxAffine);

  /// Drops the cached variant for (name, format, quantizer) so the next
  /// lease re-quantizes it from the FP32 base — the bound-violation
  /// watchdog's recovery lever. In-flight leases stay alive through their
  /// shared_ptr. Counts under errorflow.serve.registry.invalidations.
  /// Returns true when a cached variant was actually dropped.
  bool InvalidateVariant(
      const std::string& name, quant::NumericFormat format,
      quant::WeightQuantizer quantizer = quant::WeightQuantizer::kMaxAffine);

  std::vector<std::string> ModelNames() const;
  int64_t variant_count() const;
  int64_t variant_bytes() const;
  const RegistryConfig& config() const { return config_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// The shard the (name, format, quantizer) variant key hashes to. Stable
  /// for the registry's lifetime; exposed so tests and ops tooling can
  /// attribute per-shard metrics to keys.
  int ShardOf(const std::string& name, quant::NumericFormat format,
              quant::WeightQuantizer quantizer =
                  quant::WeightQuantizer::kMaxAffine) const;
  /// Cached variants resident on one shard.
  int64_t shard_variant_count(int shard) const;

  /// Installs (or clears, with nullptr) the materialization fault hook.
  void SetMaterializeFaultHookForTest(MaterializeFaultHook hook) {
    std::lock_guard<std::mutex> lock(hook_mu_);
    materialize_fault_hook_ = std::move(hook);
  }

  /// Installs (or clears, with nullptr) the verification observation hook.
  void SetVerifyHookForTest(VerifyHook hook) {
    std::lock_guard<std::mutex> lock(hook_mu_);
    verify_hook_ = std::move(hook);
  }

 private:
  struct CachedVariant {
    std::shared_ptr<Variant> variant;
    uint64_t last_used_tick = 0;
  };

  /// One independently locked slice of the variant cache.
  struct Shard {
    mutable std::mutex mu;
    /// Key: "<model>\n<format>" (model names cannot contain newlines),
    /// with a "\n<quantizer>" suffix for data-driven variants only — the
    /// max-affine keys, and their shard assignment, are unchanged.
    std::map<std::string, CachedVariant> variants;
    int64_t bytes = 0;
    uint64_t tick = 0;
    // errorflow.serve.registry.shard.<i>.* (docs/OBSERVABILITY.md).
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* bytes_gauge = nullptr;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  /// Drops this shard's least-recently-used variants (never `keep`) until
  /// its byte-budget share holds or nothing else remains. Caller holds
  /// `shard.mu`.
  void EvictShardLocked(Shard* shard, const std::string& keep);

  /// Adjusts the global resident-byte total and gauge by `delta`.
  void AddVariantBytes(int64_t delta);

  RegistryConfig config_;
  /// Per-shard share of config_.max_variant_bytes.
  int64_t shard_byte_budget_;

  /// Base-model table: read-mostly, entries never removed, pointers
  /// stable. Separate from the shards so any shard's materialization can
  /// lease the hot FP32 base without cross-shard locking.
  mutable std::mutex entries_mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;

  std::vector<Shard> shards_;
  /// Sum of shard byte totals, maintained incrementally for the gauge.
  std::atomic<int64_t> total_variant_bytes_{0};

  mutable std::mutex hook_mu_;
  MaterializeFaultHook materialize_fault_hook_;
  VerifyHook verify_hook_;

  // docs/SERVING.md metric conventions.
  obs::Counter* quantize_count_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  /// Variants dropped through InvalidateVariant (watchdog recoveries).
  obs::Counter* invalidations_;
  /// Corrupt cached variants detected (and recovered) plus failed
  /// materializations — the serving decode-failure signal.
  obs::Counter* decode_failures_;
  obs::Gauge* bytes_gauge_;
  obs::Gauge* models_gauge_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_MODEL_REGISTRY_H_
