#include "serve/load_gen.h"

#include <atomic>
#include <string>
#include <thread>

#include "quant/format.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace errorflow {
namespace serve {

namespace {

struct ClientCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t failed = 0;
};

}  // namespace

LoadGenStats RunClosedLoop(
    InferenceServer& server, const LoadGenConfig& config,
    const std::function<tensor::Tensor(uint64_t)>& input_factory) {
  EF_CHECK(config.concurrency >= 1);
  EF_CHECK(!config.tolerance_mix.empty());
  EF_CHECK(config.input_pool >= 1);

  std::vector<tensor::Tensor> pool;
  pool.reserve(static_cast<size_t>(config.input_pool));
  for (int i = 0; i < config.input_pool; ++i) {
    pool.push_back(
        input_factory(config.seed + static_cast<uint64_t>(i)));
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config.duration_seconds));

  std::vector<ClientCounters> counters(
      static_cast<size_t>(config.concurrency));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(config.concurrency));
  for (int c = 0; c < config.concurrency; ++c) {
    clients.emplace_back([&, c] {
      ClientCounters& mine = counters[static_cast<size_t>(c)];
      uint64_t i = 0;
      while (Clock::now() < stop_at) {
        InferenceRequest request;
        request.model = config.models.empty()
                            ? config.model
                            : config.models[i % config.models.size()];
        request.input = pool[(i * static_cast<uint64_t>(
                                      config.concurrency) +
                              static_cast<uint64_t>(c)) %
                             pool.size()];
        request.qoi_tolerance =
            config.tolerance_mix[i % config.tolerance_mix.size()];
        request.deadline = Clock::now() + config.request_timeout;
        ++i;
        ++mine.submitted;
        auto future = server.Submit(std::move(request));
        if (!future.ok()) {
          ++mine.rejected;
          continue;
        }
        InferenceResponse response = future->get();
        if (response.ok()) {
          ++mine.completed;
        } else if (response.status.code() ==
                   StatusCode::kDeadlineExceeded) {
          ++mine.timed_out;
        } else {
          ++mine.failed;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  LoadGenStats stats;
  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const ClientCounters& c : counters) {
    stats.submitted += c.submitted;
    stats.completed += c.completed;
    stats.rejected += c.rejected;
    stats.timed_out += c.timed_out;
    stats.failed += c.failed;
  }
  stats.throughput_rps =
      static_cast<double>(stats.completed) /
      std::max(1e-12, stats.wall_seconds);
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  stats.latency =
      registry.HistogramSnapshotOf("errorflow.serve.latency_seconds");
  stats.batch_requests =
      registry.HistogramSnapshotOf("errorflow.serve.batch_requests");
  return stats;
}

std::string LoadGenStats::Summary(
    const obs::MetricsRegistry& registry) const {
  std::string out;
  out += util::StrFormat(
      "  requests            : %llu submitted, %llu served, %llu rejected, "
      "%llu timed out, %llu failed\n",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(failed));
  out += util::StrFormat("  wall / throughput   : %.2f s / %.0f req/s\n",
                         wall_seconds, throughput_rps);
  out += util::StrFormat(
      "  latency (ms)        : p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n",
      latency.p50() * 1e3, latency.p95() * 1e3, latency.p99() * 1e3,
      latency.max * 1e3);
  out += util::StrFormat(
      "  batch fusion        : %llu batches, mean %.2f req/batch\n",
      static_cast<unsigned long long>(batch_requests.count),
      batch_requests.count > 0
          ? batch_requests.sum / static_cast<double>(batch_requests.count)
          : 0.0);
  out += util::StrFormat(
      "  admission (registry): %llu admitted | rejects: %llu invalid, "
      "%llu infeasible, %llu overload, %llu expired | %llu queue timeouts\n",
      static_cast<unsigned long long>(
          registry.CounterValue("errorflow.serve.admission.admitted")),
      static_cast<unsigned long long>(registry.CounterValue(
          "errorflow.serve.admission.rejected_invalid")),
      static_cast<unsigned long long>(registry.CounterValue(
          "errorflow.serve.admission.rejected_infeasible")),
      static_cast<unsigned long long>(registry.CounterValue(
          "errorflow.serve.admission.rejected_overload")),
      static_cast<unsigned long long>(registry.CounterValue(
          "errorflow.serve.admission.rejected_expired")),
      static_cast<unsigned long long>(
          registry.CounterValue("errorflow.serve.timeouts")));
  out += "  admitted by format  :";
  const quant::NumericFormat kFormats[] = {
      quant::NumericFormat::kFP32, quant::NumericFormat::kTF32,
      quant::NumericFormat::kFP16, quant::NumericFormat::kBF16,
      quant::NumericFormat::kINT8};
  bool first_format = true;
  for (quant::NumericFormat f : kFormats) {
    out += util::StrFormat(
        "%s %s %llu", first_format ? "" : ",", quant::FormatToString(f),
        static_cast<unsigned long long>(registry.CounterValue(
            std::string("errorflow.serve.admission.admitted.") +
            quant::FormatToString(f))));
    first_format = false;
  }
  out += "\n";
  const double batch_limit = registry.GaugeValue(
      "errorflow.serve.adaptive.batch_rows_limit");
  const uint64_t grows =
      registry.CounterValue("errorflow.serve.adaptive.grows");
  const uint64_t shrinks =
      registry.CounterValue("errorflow.serve.adaptive.shrinks");
  if (grows > 0 || shrinks > 0 || batch_limit > 0.0) {
    out += util::StrFormat(
        "  adaptive batcher    : limit %.0f rows, %llu grows, %llu "
        "shrinks, %llu early sheds\n",
        batch_limit, static_cast<unsigned long long>(grows),
        static_cast<unsigned long long>(shrinks),
        static_cast<unsigned long long>(registry.CounterValue(
            "errorflow.serve.adaptive.early_sheds")));
  }
  out += util::StrFormat(
      "  registry            : %llu quantizations, %llu hits, %llu misses, "
      "%llu evictions\n",
      static_cast<unsigned long long>(registry.CounterValue(
          "errorflow.serve.registry.quantize_count")),
      static_cast<unsigned long long>(
          registry.CounterValue("errorflow.serve.registry.hits")),
      static_cast<unsigned long long>(
          registry.CounterValue("errorflow.serve.registry.misses")),
      static_cast<unsigned long long>(
          registry.CounterValue("errorflow.serve.registry.evictions")));
  const uint64_t ledgers = registry.CounterValue("errorflow.bound.ledgers");
  if (ledgers > 0) {
    out += util::StrFormat(
        "  error budget        : %llu ledgers, %llu audits, %llu "
        "violations, %llu variant invalidations\n",
        static_cast<unsigned long long>(ledgers),
        static_cast<unsigned long long>(
            registry.CounterValue("errorflow.bound.audits")),
        static_cast<unsigned long long>(
            registry.CounterValue("errorflow.bound.violations")),
        static_cast<unsigned long long>(registry.CounterValue(
            "errorflow.serve.registry.invalidations")));
    const obs::HistogramSnapshot tightness =
        registry.HistogramSnapshotOf("errorflow.bound.tightness");
    if (tightness.count > 0) {
      out += util::StrFormat(
          "  bound tightness     : p50 %.3g  p95 %.3g  max %.3g "
          "(achieved / admitted bound, %llu samples)\n",
          tightness.p50(), tightness.p95(), tightness.max,
          static_cast<unsigned long long>(tightness.count));
    }
  }
  return out;
}

}  // namespace serve
}  // namespace errorflow
