#include "serve/batch_scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/error_budget.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace errorflow {
namespace serve {

namespace {

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Fusion compatibility: every dimension but the leading (row) one must
// match, or the fused gather/scatter memcpys would misalign rows — and,
// for a larger trailing shape, write past the fused buffer.
bool SameTrailingDims(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.ndim() != b.ndim()) return false;
  for (int d = 1; d < static_cast<int>(a.ndim()); ++d) {
    if (a.dim(d) != b.dim(d)) return false;
  }
  return true;
}

// Max per-sample error over `n` samples of `per` elements each, in the
// given norm (the serving twin of the pipeline's achieved-QoI measure).
double MaxPerSampleError(const float* ref, const float* got, int64_t n,
                         int64_t per, tensor::Norm norm) {
  double worst = 0.0;
  for (int64_t s = 0; s < n; ++s) {
    const float* a = ref + s * per;
    const float* b = got + s * per;
    if (norm == tensor::Norm::kL2) {
      double acc = 0.0;
      for (int64_t i = 0; i < per; ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        acc += d * d;
      }
      worst = std::max(worst, std::sqrt(acc));
    } else {
      for (int64_t i = 0; i < per; ++i) {
        worst =
            std::max(worst, std::fabs(static_cast<double>(a[i]) - b[i]));
      }
    }
  }
  return worst;
}

}  // namespace

AuditSampler::AuditSampler(double fraction, uint64_t initial_accumulator)
    : accumulator_(initial_accumulator) {
  fraction = std::min(1.0, std::max(0.0, fraction));
  numerator_ = static_cast<uint64_t>(
      std::llround(fraction * static_cast<double>(kScale)));
}

bool AuditSampler::Tick() {
  if (numerator_ == 0) return false;
  if (numerator_ >= kScale) return true;
  const uint64_t prev =
      accumulator_.fetch_add(numerator_, std::memory_order_relaxed);
  // Fires exactly when the integer accumulator rolls over a kScale
  // boundary. prev wraps mod 2^64 and kScale divides 2^64, so the
  // pattern is exact at any sequence length.
  return (prev % kScale) + numerator_ >= kScale;
}

BatchScheduler::BatchScheduler(ModelRegistry* registry,
                               SchedulerConfig config)
    : registry_(registry),
      config_(config),
      queue_depth_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.queue_depth")),
      completed_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.completed")),
      timeouts_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.timeouts")),
      exec_failures_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.exec_failures")),
      batch_requests_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "errorflow.serve.batch_requests",
          obs::Histogram::DefaultCountBounds())),
      batch_rows_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "errorflow.serve.batch_rows",
          obs::Histogram::DefaultCountBounds())),
      latency_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "errorflow.serve.latency_seconds")),
      queue_wait_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "errorflow.serve.queue_wait_seconds")),
      exec_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "errorflow.serve.exec_seconds")),
      batch_limit_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.adaptive.batch_rows_limit")),
      grows_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.adaptive.grows")),
      shrinks_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.adaptive.shrinks")),
      early_sheds_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.adaptive.early_sheds")),
      audit_sampler_(config.audit_fraction) {
  EF_CHECK(registry_ != nullptr);
  EF_CHECK(config_.max_batch_rows >= 1);
  EF_CHECK(config_.min_batch_rows >= 1 &&
           config_.min_batch_rows <= config_.max_batch_rows);
  EF_CHECK(config_.adapt_interval_batches >= 1);
  // Adaptive runs start at the floor and earn their way up while the SLO
  // has headroom; fixed runs use the full budget from the first batch.
  batch_rows_limit_.store(config_.slo_p99_seconds > 0.0
                              ? config_.min_batch_rows
                              : config_.max_batch_rows,
                          std::memory_order_relaxed);
  batch_limit_gauge_->Set(
      static_cast<double>(batch_rows_limit_.load(std::memory_order_relaxed)));
}

BatchScheduler::~BatchScheduler() { Shutdown(); }

Status BatchScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::OK();
  pool_ = std::make_unique<util::ThreadPool>(config_.num_workers);
  stopping_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void BatchScheduler::Deliver(Pending* pending, InferenceResponse&& response) {
  if (pending->on_complete) {
    pending->on_complete(std::move(response));
  } else {
    pending->promise.set_value(std::move(response));
  }
}

bool BatchScheduler::TryEnqueue(Pending* pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stopping_) return false;
    queue_.push_back(std::move(*pending));
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

std::future<InferenceResponse> BatchScheduler::Enqueue(
    InferenceRequest request, AdmissionDecision decision) {
  Pending pending;
  pending.request = std::move(request);
  pending.decision = decision;
  pending.enqueue_time = Clock::now();
  std::future<InferenceResponse> future = pending.promise.get_future();
  if (!TryEnqueue(&pending)) {
    InferenceResponse response;
    response.status =
        Status::FailedPrecondition("scheduler: not accepting requests");
    pending.promise.set_value(std::move(response));
  }
  return future;
}

Status BatchScheduler::EnqueueAsync(
    InferenceRequest request, AdmissionDecision decision,
    std::function<void(InferenceResponse&&)> on_complete) {
  EF_CHECK(on_complete != nullptr);
  Pending pending;
  pending.request = std::move(request);
  pending.decision = decision;
  pending.on_complete = std::move(on_complete);
  pending.enqueue_time = Clock::now();
  if (!TryEnqueue(&pending)) {
    return Status::FailedPrecondition("scheduler: not accepting requests");
  }
  return Status::OK();
}

int64_t BatchScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

bool BatchScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stopping_;
}

Status BatchScheduler::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!running_) return Status::OK();
  if (stopping_) {
    // Another thread owns the drain; joining the dispatcher twice is UB,
    // so wait for that thread to finish instead.
    shutdown_cv_.wait(lock, [this] { return !running_; });
    return Status::OK();
  }
  stopping_ = true;
  lock.unlock();

  cv_.notify_all();
  dispatcher_.join();  // Exits only once the queue is drained.
  pool_.reset();       // ThreadPool dtor drains in-flight batches.

  lock.lock();
  running_ = false;
  stopping_ = false;
  lock.unlock();
  shutdown_cv_.notify_all();
  return Status::OK();
}

void BatchScheduler::DispatchLoop() {
  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue.

      const int64_t max_rows =
          batch_rows_limit_.load(std::memory_order_relaxed);
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Copied, not referenced: push_back below reallocates `group`.
      const std::string model = group[0].request.model;
      const quant::NumericFormat format = group[0].decision.format;
      const quant::WeightQuantizer quantizer = group[0].decision.quantizer;
      int64_t rows = group[0].request.input.dim(0);
      // Sweep the queue (FIFO order) for compatible requests to fuse.
      // The fuse key is (model, format, quantizer, per-row shape): rows of
      // a different trailing shape cannot share one gather/scatter layout,
      // and a max-affine INT8 row must not execute on a data-driven
      // variant (or vice versa) — each was admitted against its own bound.
      for (auto it = queue_.begin();
           it != queue_.end() && rows < max_rows;) {
        if (it->request.model == model && it->decision.format == format &&
            it->decision.quantizer == quantizer &&
            SameTrailingDims(it->request.input, group[0].request.input) &&
            rows + it->request.input.dim(0) <= max_rows) {
          rows += it->request.input.dim(0);
          group.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    // std::function needs copyable callables; box the move-only group.
    auto boxed = std::make_shared<std::vector<Pending>>(std::move(group));
    pool_->Submit([this, boxed] { ExecuteGroup(std::move(*boxed)); });

    if (config_.slo_p99_seconds > 0.0 &&
        ++batches_since_adapt_ >= config_.adapt_interval_batches) {
      AdaptStep();
    }
  }
}

void BatchScheduler::AdaptStep() {
  batches_since_adapt_ = 0;
  obs::HistogramSnapshot now = latency_hist_->Snapshot();
  obs::HistogramSnapshot window = now.DeltaSince(adapt_baseline_);
  // No completions since the last step: keep the budget and the baseline,
  // and decide again once the window has signal.
  if (window.count == 0) return;
  adapt_baseline_ = std::move(now);

  const double p99 = window.Percentile(99.0);
  int64_t limit = batch_rows_limit_.load(std::memory_order_relaxed);
  if (p99 > config_.slo_p99_seconds) {
    const int64_t next = std::max(config_.min_batch_rows, limit / 2);
    if (next != limit) {
      shrinks_->Increment();
      obs::Logf(obs::LogLevel::kDebug,
                "scheduler: windowed p99 %.3fms over SLO %.3fms; fuse "
                "budget %lld -> %lld rows",
                p99 * 1e3, config_.slo_p99_seconds * 1e3,
                static_cast<long long>(limit),
                static_cast<long long>(next));
    }
    limit = next;
    overloaded_.store(true, std::memory_order_relaxed);
  } else {
    overloaded_.store(false, std::memory_order_relaxed);
    if (p99 < config_.slo_headroom * config_.slo_p99_seconds) {
      const int64_t next = std::min(config_.max_batch_rows, limit * 2);
      if (next != limit) grows_->Increment();
      limit = next;
    }
  }
  batch_rows_limit_.store(limit, std::memory_order_relaxed);
  batch_limit_gauge_->Set(static_cast<double>(limit));
}

void BatchScheduler::FailGroup(std::vector<Pending>* group,
                               const Status& status) {
  for (Pending& p : *group) {
    InferenceResponse response;
    response.status = status;
    Deliver(&p, std::move(response));
  }
  group->clear();
}

void BatchScheduler::ExecuteGroup(std::vector<Pending> group) {
  obs::TraceSpan span("serve.batch");
  // Shed requests whose deadline passed while they queued — and, under
  // SLO overload, those that cannot finish before their deadline anyway
  // (remaining budget below the execution-time EWMA): executing them
  // would spend worker time on a response the caller already counts as
  // dead. Shed requests record queue_wait_seconds (they did queue) but
  // not latency_seconds, which covers completed requests only
  // (docs/OBSERVABILITY.md).
  const Clock::time_point dispatch_time = Clock::now();
  const bool overloaded = overloaded_.load(std::memory_order_relaxed);
  const double exec_ewma =
      exec_ewma_seconds_.load(std::memory_order_relaxed);
  std::vector<Pending> live;
  live.reserve(group.size());
  for (Pending& p : group) {
    const bool has_deadline = p.request.deadline != Clock::time_point{};
    const bool expired = has_deadline && p.request.deadline <= dispatch_time;
    const bool doomed =
        !expired && overloaded && has_deadline &&
        SecondsBetween(dispatch_time, p.request.deadline) < exec_ewma;
    if (expired || doomed) {
      timeouts_->Increment();
      if (doomed) early_sheds_->Increment();
      InferenceResponse response;
      response.status = Status::DeadlineExceeded(
          doomed ? "scheduler: shed under SLO overload (deadline budget "
                   "below execution horizon)"
                 : "scheduler: deadline expired in queue");
      response.queue_seconds =
          SecondsBetween(p.enqueue_time, dispatch_time);
      response.total_seconds = response.queue_seconds;
      queue_wait_hist_->Record(response.queue_seconds);
      Deliver(&p, std::move(response));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  auto variant =
      registry_->GetVariant(live[0].request.model, live[0].decision.format,
                            live[0].decision.quantizer);
  if (!variant.ok()) {
    exec_failures_->Increment(static_cast<uint64_t>(live.size()));
    FailGroup(&live, variant.status());
    return;
  }

  // Gather request inputs into one fused batch.
  int64_t rows = 0;
  for (const Pending& p : live) rows += p.request.input.dim(0);
  tensor::Shape fused_shape = live[0].request.input.shape();
  fused_shape[0] = rows;
  tensor::Tensor fused(fused_shape);
  const int64_t row_elems = fused.size() / rows;
  int64_t offset = 0;
  for (const Pending& p : live) {
    const tensor::Tensor& in = p.request.input;
    std::memcpy(fused.data() + offset * row_elems, in.data(),
                static_cast<size_t>(in.size()) * sizeof(float));
    offset += in.dim(0);
  }

  tensor::Tensor output;
  {
    // Folded-model inference is thread-safe, so batches for the *same*
    // variant execute concurrently across workers (the GEMM kernels fan
    // large batches out further over the shared compute pool).
    obs::TraceSpan exec_span("serve.batch.exec");
    output = (*variant)->model.Predict(fused);
  }
  const Clock::time_point done_time = Clock::now();
  const double exec_seconds = SecondsBetween(dispatch_time, done_time);
  exec_hist_->Record(exec_seconds);
  batch_requests_hist_->Record(static_cast<double>(live.size()));
  batch_rows_hist_->Record(static_cast<double>(rows));
  // Early-shed horizon: EWMA of batch execution time. A stale-read race
  // between workers only smudges the smoothing, never correctness.
  const double prev_ewma =
      exec_ewma_seconds_.load(std::memory_order_relaxed);
  exec_ewma_seconds_.store(
      prev_ewma == 0.0 ? exec_seconds
                       : 0.8 * prev_ewma + 0.2 * exec_seconds,
      std::memory_order_relaxed);

  // Scatter output rows back to the per-request promises.
  const int64_t out_row_elems = output.size() / rows;
  tensor::Shape out_shape = output.shape();
  offset = 0;
  for (Pending& p : live) {
    const int64_t k = p.request.input.dim(0);
    out_shape[0] = k;
    tensor::Tensor slice(out_shape);
    std::memcpy(slice.data(), output.data() + offset * out_row_elems,
                static_cast<size_t>(k * out_row_elems) * sizeof(float));
    offset += k;

    InferenceResponse response;
    response.status = Status::OK();
    response.output = std::move(slice);
    response.format = p.decision.format;
    response.quantizer = p.decision.quantizer;
    response.predicted_qoi_bound = p.decision.quant_bound;
    response.batch_requests = static_cast<int64_t>(live.size());
    response.batch_rows = rows;
    response.queue_seconds = SecondsBetween(p.enqueue_time, dispatch_time);
    response.total_seconds = SecondsBetween(p.enqueue_time, done_time);
    queue_wait_hist_->Record(response.queue_seconds);
    latency_hist_->Record(response.total_seconds);
    completed_->Increment();
    Deliver(&p, std::move(response));
  }

  // Bound-violation watchdog: responses are already delivered, so the
  // FP32 reference re-execution never sits on the request latency path.
  // FP32 batches are the reference and are never audited.
  if (live[0].decision.format != quant::NumericFormat::kFP32 &&
      audit_sampler_.Tick()) {
    AuditGroup(live, fused, output, rows);
  }
}

void BatchScheduler::AuditGroup(const std::vector<Pending>& live,
                                const tensor::Tensor& fused,
                                const tensor::Tensor& output, int64_t rows) {
  // The FP32 reference goes through the normal variant lease (a cached
  // clone of the base), so audits share the execution path they police.
  auto reference_variant =
      registry_->GetVariant(live[0].request.model, quant::NumericFormat::kFP32);
  if (!reference_variant.ok()) return;

  obs::TraceSpan audit_span("serve.audit");
  tensor::Tensor reference = (*reference_variant)->model.Predict(fused);
  const int64_t out_row_elems = output.size() / rows;

  bool violated = false;
  int64_t offset = 0;
  for (const Pending& p : live) {
    const int64_t k = p.request.input.dim(0);
    obs::ErrorBudgetLedger ledger;
    ledger.model = p.request.model;
    ledger.format = quant::FormatToString(p.decision.format);
    if (p.decision.quantizer != quant::WeightQuantizer::kMaxAffine) {
      // Distinguish data-driven INT8 ledgers from max-affine INT8 ones:
      // their admitted bounds come from different step derivations.
      ledger.format +=
          std::string("+") + quant::QuantizerToString(p.decision.quantizer);
    }
    // Served inputs are not compressed: the admitted bound is all
    // quantization term, with no compression-input share.
    ledger.admitted_bound = p.decision.quant_bound;
    ledger.quant_term = p.decision.quant_bound;
    ledger.achieved_error = MaxPerSampleError(
        reference.data() + offset * out_row_elems,
        output.data() + offset * out_row_elems, k, out_row_elems,
        config_.audit_norm);
    ledger.audited = true;
    offset += k;

    obs::TraceSpan ledger_span("serve.ledger");
    obs::RecordErrorBudget(ledger, &ledger_span);
    violated = violated || ledger.violation();
  }

  if (violated && config_.evict_on_violation) {
    // Recovery lever: drop the suspect variant so the next batch
    // re-quantizes it from the FP32 base (PR 5 machinery).
    registry_->InvalidateVariant(live[0].request.model,
                                 live[0].decision.format,
                                 live[0].decision.quantizer);
  }
}

}  // namespace serve
}  // namespace errorflow
