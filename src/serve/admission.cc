#include "serve/admission.h"

#include <algorithm>
#include <limits>
#include <string>

#include "quant/format.h"
#include "util/string_util.h"

namespace errorflow {
namespace serve {

namespace {

const std::vector<quant::NumericFormat>& AllFormats() {
  static const std::vector<quant::NumericFormat> kAll = {
      quant::NumericFormat::kFP32, quant::NumericFormat::kTF32,
      quant::NumericFormat::kFP16, quant::NumericFormat::kBF16,
      quant::NumericFormat::kINT8};
  return kAll;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config)),
      admitted_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.admitted")),
      admitted_by_format_([] {
        std::array<obs::Counter*, 5> counters{};
        for (quant::NumericFormat f : AllFormats()) {
          counters[static_cast<size_t>(f)] =
              obs::MetricsRegistry::Global().GetCounter(
                  std::string("errorflow.serve.admission.admitted.") +
                  quant::FormatToString(f));
        }
        return counters;
      }()),
      rejected_invalid_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.rejected_invalid")),
      rejected_expired_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.rejected_expired")),
      rejected_overload_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.rejected_overload")),
      rejected_infeasible_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.rejected_infeasible")),
      admitted_data_driven_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.admission.admitted.data_driven")) {}

Result<AdmissionDecision> AdmissionController::Admit(
    const core::ErrorFlowAnalysis& analysis, int64_t flops_per_sample,
    int64_t bytes_per_sample, double qoi_tolerance,
    Clock::time_point deadline, Clock::time_point now, int64_t queue_depth,
    bool overloaded, const std::vector<double>* int8_data_steps) const {
  if (!(qoi_tolerance > 0.0)) {
    rejected_invalid_->Increment();
    return Status::InvalidArgument(
        util::StrFormat("admission: qoi tolerance must be > 0, got %g",
                        qoi_tolerance));
  }
  if (deadline != Clock::time_point{} && deadline <= now) {
    rejected_expired_->Increment();
    return Status::DeadlineExceeded(
        "admission: deadline already expired at submit");
  }
  const int64_t effective_depth =
      overloaded ? std::max<int64_t>(1, config_.max_queue_depth / 2)
                 : config_.max_queue_depth;
  if (queue_depth >= effective_depth) {
    rejected_overload_->Increment();
    return Status::ResourceExhausted(util::StrFormat(
        "admission: queue full (%lld/%lld%s)",
        static_cast<long long>(queue_depth),
        static_cast<long long>(effective_depth),
        overloaded ? ", bound halved under SLO overload" : ""));
  }

  // Fastest format whose error-flow bound (at zero input error — served
  // inputs are uncompressed) fits the tolerance.
  const std::vector<quant::NumericFormat>& formats =
      config_.allowed_formats.empty() ? AllFormats()
                                      : config_.allowed_formats;
  quant::ExecutionModel exec(config_.hardware, flops_per_sample,
                             bytes_per_sample);
  bool found = false;
  double tightest = std::numeric_limits<double>::infinity();
  AdmissionDecision best;
  double best_seconds = 0.0;
  // Candidate order matters on speed ties: the strict `<` below keeps the
  // earlier winner, so evaluating every max-affine format first means the
  // data-driven INT8 candidate only takes the slot when it admits a
  // tolerance max-affine INT8 cannot (or INT8 beats the fastest feasible
  // wide format outright).
  for (quant::NumericFormat f : formats) {
    const double bound = analysis.Bound(0.0, config_.norm, f);
    tightest = std::min(tightest, bound);
    if (bound > qoi_tolerance) continue;
    const double seconds = exec.SecondsPerSample(f);
    if (!found || seconds < best_seconds) {
      found = true;
      best_seconds = seconds;
      best.format = f;
      best.quantizer = quant::WeightQuantizer::kMaxAffine;
      best.quant_bound = bound;
      best.slack = qoi_tolerance - bound;
    }
  }
  if (config_.data_driven_quantizer != quant::WeightQuantizer::kMaxAffine &&
      int8_data_steps != nullptr && !int8_data_steps->empty() &&
      std::find(formats.begin(), formats.end(),
                quant::NumericFormat::kINT8) != formats.end()) {
    // Data-driven INT8: same execution profile as max-affine INT8, but a
    // bound measured on the calibration distribution instead of the
    // worst-case Table-I step.
    const double bound = analysis.BoundWithSteps(
        0.0, config_.norm, core::VectorStepFn(*int8_data_steps));
    tightest = std::min(tightest, bound);
    if (bound <= qoi_tolerance) {
      const double seconds =
          exec.SecondsPerSample(quant::NumericFormat::kINT8);
      if (!found || seconds < best_seconds) {
        found = true;
        best_seconds = seconds;
        best.format = quant::NumericFormat::kINT8;
        best.quantizer = config_.data_driven_quantizer;
        best.quant_bound = bound;
        best.slack = qoi_tolerance - bound;
      }
    }
  }
  if (!found) {
    rejected_infeasible_->Increment();
    return Status::FailedPrecondition(util::StrFormat(
        "admission: tolerance %.3e below tightest feasible bound %.3e",
        qoi_tolerance, tightest));
  }
  admitted_->Increment();
  admitted_by_format_[static_cast<size_t>(best.format)]->Increment();
  if (best.quantizer != quant::WeightQuantizer::kMaxAffine) {
    admitted_data_driven_->Increment();
  }
  return best;
}

}  // namespace serve
}  // namespace errorflow
