#include "serve/model_registry.h"

#include <algorithm>

#include "core/spectral_profile.h"
#include "nn/serialize.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "quant/quantize_model.h"

namespace errorflow {
namespace serve {

namespace {

std::string VariantKey(const std::string& name,
                       quant::NumericFormat format) {
  return name + "\n" + quant::FormatToString(format);
}

}  // namespace

uint64_t ModelRegistry::ChecksumModel(const nn::Model& model) {
  const std::string bytes = nn::SerializeModel(model);
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(config),
      quantize_count_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.quantize_count")),
      hits_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.hits")),
      misses_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.misses")),
      evictions_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.evictions")),
      invalidations_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.invalidations")),
      decode_failures_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.decode_failures")),
      bytes_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.registry.variant_bytes")),
      models_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.registry.models")) {}

Status ModelRegistry::Register(std::string name, nn::Model model,
                               tensor::Shape single_input_shape) {
  if (name.empty() || name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("registry: bad model name");
  }
  obs::TraceSpan span("serve.registry.register");
  // Profile before folding, as the pipeline does: the profiler reads PSN
  // scales through the layer API.
  core::ErrorFlowAnalysis analysis(
      core::ProfileModel(model, single_input_shape));
  model.FoldPsn();
  auto entry = std::make_unique<Entry>(std::move(model), std::move(analysis),
                                       single_input_shape);
  entry->flops_per_sample = entry->base.FlopsPerSample(single_input_shape);
  int64_t elems = 1;
  for (size_t i = 1; i < single_input_shape.size(); ++i) {
    elems *= single_input_shape[i];
  }
  entry->bytes_per_sample = elems * static_cast<int64_t>(sizeof(float));

  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(name) != 0) {
    return Status::AlreadyExists("registry: model already registered: " +
                                 name);
  }
  entries_.emplace(std::move(name), std::move(entry));
  models_gauge_->Set(static_cast<double>(entries_.size()));
  return Status::OK();
}

Result<const ModelRegistry::Entry*> ModelRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("registry: no such model: " + name);
  }
  return static_cast<const Entry*>(it->second.get());
}

Result<std::shared_ptr<ModelRegistry::Variant>> ModelRegistry::GetVariant(
    const std::string& name, quant::NumericFormat format) {
  const std::string key = VariantKey(name, format);
  std::lock_guard<std::mutex> lock(mu_);
  auto hit = variants_.find(key);
  if (hit != variants_.end()) {
    if (!config_.verify_variants ||
        ChecksumModel(hit->second.variant->model) ==
            hit->second.variant->checksum) {
      hit->second.last_used_tick = ++tick_;
      hits_->Increment();
      return hit->second.variant;
    }
    // Corrupt cached variant: count it, drop it, and fall through to the
    // miss path so the lease is served by re-quantizing from the (trusted)
    // FP32 base instead of crashing or handing out bad weights.
    decode_failures_->Increment();
    obs::Logf(obs::LogLevel::kWarn,
              "registry: checksum mismatch on cached variant %s/%s; "
              "re-quantizing from base",
              name.c_str(), quant::FormatToString(format));
    variant_bytes_ -= hit->second.variant->resident_bytes;
    variants_.erase(hit);
    bytes_gauge_->Set(static_cast<double>(variant_bytes_));
  }
  auto entry_it = entries_.find(name);
  if (entry_it == entries_.end()) {
    return Status::NotFound("registry: no such model: " + name);
  }
  misses_->Increment();
  if (materialize_fault_hook_) {
    Status fault = materialize_fault_hook_(name, format);
    if (!fault.ok()) {
      decode_failures_->Increment();
      return Status(fault.code(),
                    std::string("registry: failed to materialize ") + name +
                        "/" + quant::FormatToString(format) + ": " +
                        fault.message());
    }
  }
  quantize_count_->Increment();

  obs::TraceSpan span("serve.registry.quantize");
  auto variant = std::make_shared<Variant>();
  variant->format = format;
  // kFP32 clones (QuantizeWeights is an identity clone there); reduced
  // formats round every Dense/Conv weight tensor.
  variant->model =
      std::move(quant::QuantizeWeights(entry_it->second->base, format).model);
  // The base was folded at Register; folding the clone again is a no-op
  // that keeps the "serving never runs power iteration" invariant robust
  // to future base-model sources.
  variant->model.FoldPsn();
  // Variants store rounded values as FP32, so resident bytes are the FP32
  // footprint regardless of the logical format width.
  variant->resident_bytes =
      quant::ModelStorageBytes(variant->model, quant::NumericFormat::kFP32);
  variant->checksum = ChecksumModel(variant->model);
  obs::Logf(obs::LogLevel::kDebug,
            "registry: materialized %s/%s (%lld bytes)", name.c_str(),
            quant::FormatToString(format),
            static_cast<long long>(variant->resident_bytes));

  CachedVariant cached;
  cached.variant = variant;
  cached.last_used_tick = ++tick_;
  variant_bytes_ += variant->resident_bytes;
  variants_.emplace(key, std::move(cached));
  EvictLocked(key);
  bytes_gauge_->Set(static_cast<double>(variant_bytes_));
  return variant;
}

bool ModelRegistry::InvalidateVariant(const std::string& name,
                                      quant::NumericFormat format) {
  const std::string key = VariantKey(name, format);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = variants_.find(key);
  if (it == variants_.end()) return false;
  invalidations_->Increment();
  obs::Logf(obs::LogLevel::kWarn,
            "registry: invalidated variant %s/%s; next lease re-quantizes "
            "from base",
            name.c_str(), quant::FormatToString(format));
  variant_bytes_ -= it->second.variant->resident_bytes;
  variants_.erase(it);
  bytes_gauge_->Set(static_cast<double>(variant_bytes_));
  return true;
}

void ModelRegistry::EvictLocked(const std::string& keep) {
  while (variant_bytes_ > config_.max_variant_bytes && variants_.size() > 1) {
    auto victim = variants_.end();
    for (auto it = variants_.begin(); it != variants_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == variants_.end() ||
          it->second.last_used_tick < victim->second.last_used_tick) {
        victim = it;
      }
    }
    if (victim == variants_.end()) return;
    variant_bytes_ -= victim->second.variant->resident_bytes;
    evictions_->Increment();
    obs::Logf(obs::LogLevel::kDebug, "registry: evicted variant %s",
              victim->first.c_str());
    variants_.erase(victim);
  }
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

int64_t ModelRegistry::variant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(variants_.size());
}

int64_t ModelRegistry::variant_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return variant_bytes_;
}

}  // namespace serve
}  // namespace errorflow
