#include "serve/model_registry.h"

#include <algorithm>
#include <functional>

#include "core/spectral_profile.h"
#include "nn/serialize.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "quant/optq.h"
#include "quant/quantize_model.h"
#include "util/random.h"

namespace errorflow {
namespace serve {

namespace {

std::string VariantKey(const std::string& name, quant::NumericFormat format,
                       quant::WeightQuantizer quantizer) {
  std::string key = name + "\n" + quant::FormatToString(format);
  // Max-affine keys keep their legacy shape (and shard assignment); only
  // data-driven variants grow a suffix.
  if (quantizer != quant::WeightQuantizer::kMaxAffine) {
    key += "\n";
    key += quant::QuantizerToString(quantizer);
  }
  return key;
}

}  // namespace

uint64_t ModelRegistry::ChecksumModel(const nn::Model& model) {
  const std::string bytes = nn::SerializeModel(model);
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ModelRegistry::ModelRegistry(RegistryConfig config)
    : config_(config),
      quantize_count_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.quantize_count")),
      hits_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.hits")),
      misses_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.misses")),
      evictions_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.evictions")),
      invalidations_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.registry.invalidations")),
      decode_failures_(obs::MetricsRegistry::Global().GetCounter(
          "errorflow.serve.decode_failures")),
      bytes_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.registry.variant_bytes")),
      models_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "errorflow.serve.registry.models")) {
  config_.num_shards = std::max(1, config_.num_shards);
  shard_byte_budget_ =
      std::max<int64_t>(1, config_.max_variant_bytes / config_.num_shards);
  shards_ = std::vector<Shard>(static_cast<size_t>(config_.num_shards));
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix =
        "errorflow.serve.registry.shard." + std::to_string(i);
    shards_[i].hits =
        obs::MetricsRegistry::Global().GetCounter(prefix + ".hits");
    shards_[i].misses =
        obs::MetricsRegistry::Global().GetCounter(prefix + ".misses");
    shards_[i].evictions =
        obs::MetricsRegistry::Global().GetCounter(prefix + ".evictions");
    shards_[i].bytes_gauge =
        obs::MetricsRegistry::Global().GetGauge(prefix + ".variant_bytes");
  }
}

ModelRegistry::Shard& ModelRegistry::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const ModelRegistry::Shard& ModelRegistry::ShardFor(
    const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % shards_.size()];
}

int ModelRegistry::ShardOf(const std::string& name,
                           quant::NumericFormat format,
                           quant::WeightQuantizer quantizer) const {
  return static_cast<int>(
      std::hash<std::string>{}(VariantKey(name, format, quantizer)) %
      shards_.size());
}

void ModelRegistry::AddVariantBytes(int64_t delta) {
  const int64_t total =
      total_variant_bytes_.fetch_add(delta, std::memory_order_relaxed) +
      delta;
  bytes_gauge_->Set(static_cast<double>(total));
}

Status ModelRegistry::Register(std::string name, nn::Model model,
                               tensor::Shape single_input_shape) {
  tensor::Tensor calibration;
  if (config_.data_driven_quantizer != quant::WeightQuantizer::kMaxAffine) {
    // Synthesize the calibration batch: uniform [-1, 1] matches the
    // normalized serving inputs, and the fixed seed keeps every later
    // materialization bit-identical to the steps priced here.
    tensor::Shape calib_shape = single_input_shape;
    if (calib_shape.empty()) {
      return Status::InvalidArgument("registry: bad input shape");
    }
    calib_shape[0] = std::max<int64_t>(1, config_.calibration_samples);
    calibration = tensor::Tensor(calib_shape);
    util::Rng rng(config_.calibration_seed);
    for (int64_t i = 0; i < calibration.size(); ++i) {
      calibration[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  return Register(std::move(name), std::move(model),
                  std::move(single_input_shape), std::move(calibration));
}

Status ModelRegistry::Register(std::string name, nn::Model model,
                               tensor::Shape single_input_shape,
                               tensor::Tensor calibration) {
  if (name.empty() || name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("registry: bad model name");
  }
  if (calibration.size() > 0) {
    // A mis-shaped batch would otherwise reach DenseLayer::Forward's
    // EF_CHECK during the calibration pass and abort the process; reject
    // it here like every other bad-input path in this API.
    if (calibration.ndim() !=
        static_cast<int64_t>(single_input_shape.size())) {
      return Status::InvalidArgument(
          "registry: calibration batch rank does not match input shape");
    }
    for (size_t i = 1; i < single_input_shape.size(); ++i) {
      if (calibration.dim(static_cast<int>(i)) != single_input_shape[i]) {
        return Status::InvalidArgument(
            "registry: calibration batch trailing dims do not match input "
            "shape");
      }
    }
  }
  obs::TraceSpan span("serve.registry.register");
  // Profile before folding, as the pipeline does: the profiler reads PSN
  // scales through the layer API.
  core::ErrorFlowAnalysis analysis(
      core::ProfileModel(model, single_input_shape));
  model.FoldPsn();
  auto entry = std::make_unique<Entry>(std::move(model), std::move(analysis),
                                       single_input_shape);
  entry->flops_per_sample = entry->base.FlopsPerSample(single_input_shape);
  int64_t elems = 1;
  for (size_t i = 1; i < single_input_shape.size(); ++i) {
    elems *= single_input_shape[i];
  }
  entry->bytes_per_sample = elems * static_cast<int64_t>(sizeof(float));

  if (config_.data_driven_quantizer != quant::WeightQuantizer::kMaxAffine &&
      calibration.size() > 0) {
    // Price the data-driven variant's effective steps once, up front:
    // admission consults them on every request, and the deterministic
    // quantizer guarantees any later materialization reproduces exactly
    // the weights these steps were measured on. The quantized clone is
    // discarded here — GetVariant materializes lazily, like every other
    // variant.
    entry->calibration = std::move(calibration);
    quant::OptqQuantizedModel priced = quant::OptqQuantizeWeights(
        entry->base, entry->calibration, config_.data_driven_quantizer);
    entry->optq_steps = quant::OptqEffectiveSteps(priced);
    if (static_cast<int64_t>(entry->optq_steps.size()) !=
        entry->analysis.LinearLayerCount()) {
      return Status::Internal(
          "registry: data-driven step count does not match profile");
    }
  }

  std::lock_guard<std::mutex> lock(entries_mu_);
  if (entries_.count(name) != 0) {
    return Status::AlreadyExists("registry: model already registered: " +
                                 name);
  }
  entries_.emplace(std::move(name), std::move(entry));
  models_gauge_->Set(static_cast<double>(entries_.size()));
  return Status::OK();
}

Result<const ModelRegistry::Entry*> ModelRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(entries_mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("registry: no such model: " + name);
  }
  return static_cast<const Entry*>(it->second.get());
}

Result<std::shared_ptr<ModelRegistry::Variant>> ModelRegistry::GetVariant(
    const std::string& name, quant::NumericFormat format,
    quant::WeightQuantizer quantizer) {
  if (quantizer != quant::WeightQuantizer::kMaxAffine &&
      format != quant::NumericFormat::kINT8) {
    return Status::InvalidArgument(
        std::string("registry: quantizer ") +
        quant::QuantizerToString(quantizer) +
        " only applies to int8 variants");
  }
  const std::string key = VariantKey(name, format, quantizer);
  Shard& shard = ShardFor(key);

  std::shared_ptr<Variant> cached;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto hit = shard.variants.find(key);
    if (hit != shard.variants.end()) {
      hit->second.last_used_tick = ++shard.tick;
      cached = hit->second.variant;
    }
  }
  if (cached != nullptr) {
    bool verified = true;
    if (config_.verify_variants) {
      VerifyHook verify_hook;
      {
        std::lock_guard<std::mutex> lock(hook_mu_);
        verify_hook = verify_hook_;
      }
      if (verify_hook) verify_hook(name, format);
      // The serialization pass runs off the shard lock: a slow checksum
      // never convoys other leases (or other workers re-verifying the
      // same variant) behind this one.
      verified = ChecksumModel(cached->model) == cached->checksum;
    }
    if (verified) {
      hits_->Increment();
      shard.hits->Increment();
      return cached;
    }
    // Corrupt cached variant: count it, drop it, and fall through to the
    // miss path so the lease is served by re-quantizing from the (trusted)
    // FP32 base instead of crashing or handing out bad weights. The drop
    // is CAS-style: only the exact variant we verified is erased, so a
    // racing thread that already replaced the slot is left alone.
    decode_failures_->Increment();
    obs::Logf(obs::LogLevel::kWarn,
              "registry: checksum mismatch on cached variant %s/%s; "
              "re-quantizing from base",
              name.c_str(), quant::FormatToString(format));
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.variants.find(key);
    if (it != shard.variants.end() && it->second.variant == cached) {
      shard.bytes -= it->second.variant->resident_bytes;
      AddVariantBytes(-it->second.variant->resident_bytes);
      shard.variants.erase(it);
      shard.bytes_gauge->Set(static_cast<double>(shard.bytes));
    }
  }

  const Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(entries_mu_);
    auto entry_it = entries_.find(name);
    if (entry_it == entries_.end()) {
      return Status::NotFound("registry: no such model: " + name);
    }
    entry = entry_it->second.get();
  }
  misses_->Increment();
  shard.misses->Increment();
  MaterializeFaultHook fault_hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    fault_hook = materialize_fault_hook_;
  }
  if (fault_hook) {
    Status fault = fault_hook(name, format);
    if (!fault.ok()) {
      decode_failures_->Increment();
      return Status(fault.code(),
                    std::string("registry: failed to materialize ") + name +
                        "/" + quant::FormatToString(format) + ": " +
                        fault.message());
    }
  }
  quantize_count_->Increment();

  // Quantize outside the shard lock: materializing one variant must not
  // stall every lease that hashes to the same shard. Concurrent misses on
  // the same key may duplicate this work; the insert below reconciles.
  obs::TraceSpan span("serve.registry.quantize");
  auto variant = std::make_shared<Variant>();
  variant->format = format;
  variant->quantizer = quantizer;
  if (quantizer != quant::WeightQuantizer::kMaxAffine) {
    if (entry->calibration.size() == 0) {
      decode_failures_->Increment();
      return Status::FailedPrecondition(
          std::string("registry: model ") + name +
          " was not registered with data-driven calibration");
    }
    // Deterministic: bit-identical to the clone whose effective steps
    // Register priced, however many evictions later.
    variant->model = std::move(
        quant::OptqQuantizeWeights(entry->base, entry->calibration, quantizer)
            .model);
  } else {
    // kFP32 clones (QuantizeWeights is an identity clone there); reduced
    // formats round every Dense/Conv weight tensor.
    variant->model =
        std::move(quant::QuantizeWeights(entry->base, format).model);
  }
  // The base was folded at Register; folding the clone again is a no-op
  // that keeps the "serving never runs power iteration" invariant robust
  // to future base-model sources.
  variant->model.FoldPsn();
  // Variants store rounded values as FP32, so resident bytes are the FP32
  // footprint regardless of the logical format width.
  variant->resident_bytes =
      quant::ModelStorageBytes(variant->model, quant::NumericFormat::kFP32);
  variant->checksum = ChecksumModel(variant->model);
  obs::Logf(obs::LogLevel::kDebug,
            "registry: materialized %s/%s (%lld bytes, shard %d)",
            name.c_str(), quant::FormatToString(format),
            static_cast<long long>(variant->resident_bytes),
            ShardOf(name, format, quantizer));

  std::lock_guard<std::mutex> lock(shard.mu);
  auto raced = shard.variants.find(key);
  if (raced != shard.variants.end()) {
    // Another materializer inserted while we quantized; lease theirs so
    // the shard keeps exactly one resident copy per key.
    raced->second.last_used_tick = ++shard.tick;
    return raced->second.variant;
  }
  CachedVariant entry_to_cache;
  entry_to_cache.variant = variant;
  entry_to_cache.last_used_tick = ++shard.tick;
  shard.bytes += variant->resident_bytes;
  AddVariantBytes(variant->resident_bytes);
  shard.variants.emplace(key, std::move(entry_to_cache));
  EvictShardLocked(&shard, key);
  shard.bytes_gauge->Set(static_cast<double>(shard.bytes));
  return variant;
}

bool ModelRegistry::InvalidateVariant(const std::string& name,
                                      quant::NumericFormat format,
                                      quant::WeightQuantizer quantizer) {
  const std::string key = VariantKey(name, format, quantizer);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.variants.find(key);
  if (it == shard.variants.end()) return false;
  invalidations_->Increment();
  obs::Logf(obs::LogLevel::kWarn,
            "registry: invalidated variant %s/%s; next lease re-quantizes "
            "from base",
            name.c_str(), quant::FormatToString(format));
  shard.bytes -= it->second.variant->resident_bytes;
  AddVariantBytes(-it->second.variant->resident_bytes);
  shard.variants.erase(it);
  shard.bytes_gauge->Set(static_cast<double>(shard.bytes));
  return true;
}

void ModelRegistry::EvictShardLocked(Shard* shard, const std::string& keep) {
  while (shard->bytes > shard_byte_budget_ && shard->variants.size() > 1) {
    auto victim = shard->variants.end();
    for (auto it = shard->variants.begin(); it != shard->variants.end();
         ++it) {
      if (it->first == keep) continue;
      if (victim == shard->variants.end() ||
          it->second.last_used_tick < victim->second.last_used_tick) {
        victim = it;
      }
    }
    if (victim == shard->variants.end()) return;
    shard->bytes -= victim->second.variant->resident_bytes;
    AddVariantBytes(-victim->second.variant->resident_bytes);
    evictions_->Increment();
    shard->evictions->Increment();
    obs::Logf(obs::LogLevel::kDebug, "registry: evicted variant %s",
              victim->first.c_str());
    shard->variants.erase(victim);
  }
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(entries_mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

int64_t ModelRegistry::variant_count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.variants.size());
  }
  return total;
}

int64_t ModelRegistry::variant_bytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

int64_t ModelRegistry::shard_variant_count(int shard) const {
  const Shard& s = shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  return static_cast<int64_t>(s.variants.size());
}

}  // namespace serve
}  // namespace errorflow
