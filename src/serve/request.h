#ifndef ERRORFLOW_SERVE_REQUEST_H_
#define ERRORFLOW_SERVE_REQUEST_H_

#include <chrono>
#include <string>

#include "quant/format.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace errorflow {
namespace serve {

using Clock = std::chrono::steady_clock;

/// \brief One inference request against a registered model.
///
/// `input` is a batch of one or more samples in the model's input layout
/// ((k, features) or (k, C, H, W)); the scheduler may fuse several
/// requests into one execution batch. The QoI tolerance drives admission:
/// the controller picks the fastest quantized variant whose predicted
/// error bound fits inside it, or rejects the request outright.
struct InferenceRequest {
  std::string model;
  tensor::Tensor input;
  /// Absolute QoI tolerance, same norm as the server's configured norm.
  double qoi_tolerance = 0.0;
  /// Absolute deadline; a default-constructed time_point means "apply the
  /// server's default timeout at submit time". Requests still queued past
  /// their deadline are shed with kDeadlineExceeded instead of executed.
  Clock::time_point deadline{};
};

/// \brief Outcome of an admitted request, delivered through the future
/// returned by InferenceServer::Submit.
struct InferenceResponse {
  /// OK on success; kDeadlineExceeded when the request expired in the
  /// queue; other codes for execution failures.
  Status status;
  tensor::Tensor output;
  /// Variant the request executed on.
  quant::NumericFormat format = quant::NumericFormat::kFP32;
  /// Weight quantizer of that variant (kOptq/kSpfq for data-driven INT8).
  quant::WeightQuantizer quantizer = quant::WeightQuantizer::kMaxAffine;
  /// Predicted QoI bound of that variant (quantization term only; served
  /// inputs are not compressed).
  double predicted_qoi_bound = 0.0;
  /// Requests and total sample rows fused into the executed batch.
  int64_t batch_requests = 0;
  int64_t batch_rows = 0;
  /// Seconds spent queued before dispatch, and submit-to-completion total.
  double queue_seconds = 0.0;
  double total_seconds = 0.0;

  bool ok() const { return status.ok(); }
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_REQUEST_H_
