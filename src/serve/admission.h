#ifndef ERRORFLOW_SERVE_ADMISSION_H_
#define ERRORFLOW_SERVE_ADMISSION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/error_bound.h"
#include "obs/metrics.h"
#include "quant/hardware_model.h"
#include "serve/request.h"
#include "util/result.h"

namespace errorflow {
namespace serve {

/// \brief Admission policy.
struct AdmissionConfig {
  tensor::Norm norm = tensor::Norm::kLinf;
  /// Hardware profile used to rank feasible formats by execution speed.
  quant::HardwareProfile hardware;
  /// Formats the controller may choose from; empty means all five
  /// (FP32 included, so any positive tolerance is feasible). Restricting
  /// to ReducedFormats() makes tight tolerances rejectable.
  std::vector<quant::NumericFormat> allowed_formats;
  /// Backpressure bound: requests arriving while this many admitted
  /// requests are still queued are shed with kResourceExhausted.
  int64_t max_queue_depth = 1024;
};

/// \brief The controller's verdict for an admitted request.
struct AdmissionDecision {
  quant::NumericFormat format = quant::NumericFormat::kFP32;
  /// Predicted QoI bound of the chosen format (quantization term only).
  double quant_bound = 0.0;
  /// Tolerance left unused by the chosen format.
  double slack = 0.0;
};

/// \brief Maps a request's QoI tolerance to the fastest feasible quantized
/// format via the error-flow bound, rejecting doomed work up front.
///
/// Typed rejections:
///  - kInvalidArgument:    tolerance <= 0 (a zero budget admits no error
///                         bound, not even FP32's, under Linf/L2 semantics);
///  - kDeadlineExceeded:   deadline already expired at submit;
///  - kResourceExhausted:  queue depth at the backpressure bound;
///  - kFailedPrecondition: tolerance below the tightest feasible bound of
///                         the allowed formats.
///
/// Every path increments an `errorflow.serve.admission.*` counter.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decides one request. `now` is injected for testability; production
  /// callers pass Clock::now(). `queue_depth` is the number of admitted,
  /// not-yet-dispatched requests. `overloaded` is the scheduler's
  /// SLO-overload signal: while set, the effective queue bound is halved,
  /// so backpressure engages before the queue grows into latency the
  /// adaptive batcher can no longer shed its way out of.
  Result<AdmissionDecision> Admit(const core::ErrorFlowAnalysis& analysis,
                                  int64_t flops_per_sample,
                                  int64_t bytes_per_sample,
                                  double qoi_tolerance,
                                  Clock::time_point deadline,
                                  Clock::time_point now, int64_t queue_depth,
                                  bool overloaded = false) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  obs::Counter* admitted_;
  /// Per-chosen-format admissions, indexed by the NumericFormat ordinal:
  /// errorflow.serve.admission.admitted.<format>.
  std::array<obs::Counter*, 5> admitted_by_format_;
  obs::Counter* rejected_invalid_;
  obs::Counter* rejected_expired_;
  obs::Counter* rejected_overload_;
  obs::Counter* rejected_infeasible_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_ADMISSION_H_
