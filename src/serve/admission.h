#ifndef ERRORFLOW_SERVE_ADMISSION_H_
#define ERRORFLOW_SERVE_ADMISSION_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/error_bound.h"
#include "obs/metrics.h"
#include "quant/hardware_model.h"
#include "serve/request.h"
#include "util/result.h"

namespace errorflow {
namespace serve {

/// \brief Admission policy.
struct AdmissionConfig {
  tensor::Norm norm = tensor::Norm::kLinf;
  /// Hardware profile used to rank feasible formats by execution speed.
  quant::HardwareProfile hardware;
  /// Formats the controller may choose from; empty means all five
  /// (FP32 included, so any positive tolerance is feasible). Restricting
  /// to ReducedFormats() makes tight tolerances rejectable.
  std::vector<quant::NumericFormat> allowed_formats;
  /// Backpressure bound: requests arriving while this many admitted
  /// requests are still queued are shed with kResourceExhausted.
  int64_t max_queue_depth = 1024;
  /// Data-driven INT8 quantizer offered alongside the Table-I max-affine
  /// INT8 variant (kMaxAffine disables it). When enabled and the caller
  /// passes the model's priced effective steps, the controller also
  /// evaluates a data-driven INT8 candidate whose tighter measured bound
  /// can admit tolerances the worst-case max-affine bound cannot — i.e.
  /// requests that would otherwise route to a slower wide format.
  quant::WeightQuantizer data_driven_quantizer =
      quant::WeightQuantizer::kMaxAffine;
};

/// \brief The controller's verdict for an admitted request.
struct AdmissionDecision {
  quant::NumericFormat format = quant::NumericFormat::kFP32;
  /// Weight quantizer of the chosen variant: kMaxAffine for the Table-I
  /// family, kOptq/kSpfq when the data-driven INT8 candidate won.
  quant::WeightQuantizer quantizer = quant::WeightQuantizer::kMaxAffine;
  /// Predicted QoI bound of the chosen format (quantization term only).
  double quant_bound = 0.0;
  /// Tolerance left unused by the chosen format.
  double slack = 0.0;
};

/// \brief Maps a request's QoI tolerance to the fastest feasible quantized
/// format via the error-flow bound, rejecting doomed work up front.
///
/// Typed rejections:
///  - kInvalidArgument:    tolerance <= 0 (a zero budget admits no error
///                         bound, not even FP32's, under Linf/L2 semantics);
///  - kDeadlineExceeded:   deadline already expired at submit;
///  - kResourceExhausted:  queue depth at the backpressure bound;
///  - kFailedPrecondition: tolerance below the tightest feasible bound of
///                         the allowed formats.
///
/// Every path increments an `errorflow.serve.admission.*` counter.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decides one request. `now` is injected for testability; production
  /// callers pass Clock::now(). `queue_depth` is the number of admitted,
  /// not-yet-dispatched requests. `overloaded` is the scheduler's
  /// SLO-overload signal: while set, the effective queue bound is halved,
  /// so backpressure engages before the queue grows into latency the
  /// adaptive batcher can no longer shed its way out of.
  ///
  /// `int8_data_steps` (optional) are the model's priced data-driven
  /// effective steps in StepFn traversal order
  /// (ModelRegistry::Entry::optq_steps). Consulted only when
  /// `config.data_driven_quantizer` is enabled and INT8 is an allowed
  /// format; on a speed tie with an admitted max-affine INT8 the
  /// max-affine variant wins (no reason to pay the calibration variant
  /// when the worst-case one already fits).
  Result<AdmissionDecision> Admit(
      const core::ErrorFlowAnalysis& analysis, int64_t flops_per_sample,
      int64_t bytes_per_sample, double qoi_tolerance,
      Clock::time_point deadline, Clock::time_point now, int64_t queue_depth,
      bool overloaded = false,
      const std::vector<double>* int8_data_steps = nullptr) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  obs::Counter* admitted_;
  /// Per-chosen-format admissions, indexed by the NumericFormat ordinal:
  /// errorflow.serve.admission.admitted.<format>.
  std::array<obs::Counter*, 5> admitted_by_format_;
  obs::Counter* rejected_invalid_;
  obs::Counter* rejected_expired_;
  obs::Counter* rejected_overload_;
  obs::Counter* rejected_infeasible_;
  /// Admissions won by the data-driven INT8 candidate:
  /// errorflow.serve.admission.admitted.data_driven.
  obs::Counter* admitted_data_driven_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_ADMISSION_H_
