#ifndef ERRORFLOW_SERVE_SERVER_H_
#define ERRORFLOW_SERVE_SERVER_H_

#include <functional>
#include <future>
#include <memory>
#include <string>

#include "serve/admission.h"
#include "serve/batch_scheduler.h"
#include "serve/model_registry.h"
#include "serve/request.h"

namespace errorflow {
namespace serve {

/// \brief Whole-server configuration; the component configs are derived
/// from it.
struct ServerConfig {
  /// Workers executing fused batches.
  int num_workers = 4;
  /// Cap on sample rows fused into one execution batch.
  int64_t max_batch_rows = 64;
  /// Admitted-but-queued bound; arrivals beyond it are shed.
  int64_t max_queue_depth = 1024;
  /// LRU budget for cached quantized variants.
  int64_t max_variant_bytes = 256ll << 20;
  /// Variant-cache shards (see RegistryConfig::num_shards).
  int registry_shards = 8;
  /// Re-verify variant checksums on every cache hit (off the shard lock;
  /// see RegistryConfig::verify_variants).
  bool verify_variants = false;
  /// Target p99 request latency for the adaptive batcher; 0 keeps the
  /// fixed max_batch_rows fuse budget (see SchedulerConfig).
  double slo_p99_seconds = 0.0;
  /// Adaptive fuse-budget floor and starting value (SLO mode only).
  int64_t min_batch_rows = 1;
  /// Dispatched batches between adaptive-controller steps.
  int adapt_interval_batches = 16;
  /// Norm of request tolerances.
  tensor::Norm norm = tensor::Norm::kLinf;
  quant::HardwareProfile hardware;
  /// Formats admission may choose; empty = all five (FP32 included).
  std::vector<quant::NumericFormat> allowed_formats;
  /// Deadline applied to requests that submit without one.
  std::chrono::milliseconds default_timeout{1000};
  /// Fraction of fused batches re-executed on the FP32 base to measure
  /// achieved-vs-bound tightness (errorflow.bound.*). 0 disables the
  /// bound-violation watchdog; 1 audits every quantized batch.
  double audit_fraction = 0.0;
  /// When true, a bound violation evicts the offending variant so the
  /// next batch re-quantizes it from the FP32 base.
  bool evict_on_violation = false;
  /// Data-driven INT8 weight quantizer offered alongside the Table-I
  /// max-affine variants (kMaxAffine disables it; see
  /// RegistryConfig::data_driven_quantizer and
  /// AdmissionConfig::data_driven_quantizer). With kOptq/kSpfq,
  /// RegisterModel runs one calibration pass, admission prices the tighter
  /// measured INT8 bound, and the watchdog audits the new variants like
  /// any other.
  quant::WeightQuantizer data_driven_quantizer =
      quant::WeightQuantizer::kMaxAffine;
  /// Rows of the synthesized calibration batch (data-driven mode only).
  int64_t calibration_samples = 64;
};

/// \brief Concurrent inference service: tolerance-based admission, request
/// batching, and a registry of quantized model variants (Fig. 1's
/// (tolerance, format) selection, run as a server instead of one pipeline
/// at a time).
///
/// Lifecycle: RegisterModel (any time) -> Start -> Submit... -> Shutdown.
/// Shutdown drains: every admitted request completes or is shed with a
/// typed Status. All activity is observable under `errorflow.serve.*`
/// (docs/SERVING.md).
class InferenceServer {
 public:
  explicit InferenceServer(ServerConfig config = {});

  /// Shuts down if still running.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Profiles and registers a trained model under `name`. In data-driven
  /// mode the registry synthesizes a calibration batch; use the overload
  /// to calibrate on real data instead.
  Status RegisterModel(std::string name, nn::Model model,
                       tensor::Shape single_input_shape);

  /// RegisterModel with an explicit calibration batch for the data-driven
  /// quantizer (ignored when data_driven_quantizer is kMaxAffine).
  Status RegisterModel(std::string name, nn::Model model,
                       tensor::Shape single_input_shape,
                       tensor::Tensor calibration);

  Status Start();

  /// Admits and enqueues one request. Typed-error results (kNotFound,
  /// kInvalidArgument, kDeadlineExceeded, kResourceExhausted,
  /// kFailedPrecondition) reject without queuing work; an OK result's
  /// future completes with the response.
  Result<std::future<InferenceResponse>> Submit(InferenceRequest request);

  /// Callback twin of Submit for event-loop callers (the `net` wire
  /// layer): same typed admission rejections, returned synchronously
  /// without invoking the callback. On OK, `on_complete` fires exactly
  /// once from a scheduler thread — completion, queue shed, or execution
  /// failure — and must not block.
  Status SubmitAsync(InferenceRequest request,
                     std::function<void(InferenceResponse&&)> on_complete);

  /// Drains the queue and stops workers. Idempotent.
  Status Shutdown();

  bool running() const { return scheduler_.running(); }
  int64_t queue_depth() const { return scheduler_.queue_depth(); }
  ModelRegistry& registry() { return registry_; }
  const ServerConfig& config() const { return config_; }

 private:
  /// Shared Submit/SubmitAsync front half: lookup, shape validation,
  /// default-deadline stamping (mutates `request`), and admission.
  Result<AdmissionDecision> AdmitRequest(InferenceRequest* request);

  ServerConfig config_;
  ModelRegistry registry_;
  AdmissionController admission_;
  BatchScheduler scheduler_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_SERVER_H_
