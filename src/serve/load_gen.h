#ifndef ERRORFLOW_SERVE_LOAD_GEN_H_
#define ERRORFLOW_SERVE_LOAD_GEN_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/server.h"
#include "tensor/tensor.h"

namespace errorflow {
namespace serve {

/// \brief Closed-loop load-generator configuration: each of `concurrency`
/// client threads keeps exactly one request outstanding for
/// `duration_seconds`, cycling through `tolerance_mix`.
struct LoadGenConfig {
  std::string model;
  /// When non-empty, clients cycle requests across these models instead of
  /// `model` — the multi-model mix that spreads variant leases across
  /// registry shards. All listed models must accept the same input shape.
  std::vector<std::string> models;
  int concurrency = 8;
  double duration_seconds = 5.0;
  /// QoI tolerances cycled per request (the request "mix"); must be
  /// non-empty.
  std::vector<double> tolerance_mix = {1e-3, 1e-2, 1e-1};
  /// Per-request deadline.
  std::chrono::milliseconds request_timeout{1000};
  /// Distinct pregenerated inputs cycled by the clients (inputs are
  /// produced up front so client threads never race the factory).
  int input_pool = 16;
  uint64_t seed = 1;
};

/// \brief Aggregated outcome of one load-generation run. Client-side
/// counters come from the futures; latency percentiles and admit/reject
/// counts are read back from the `errorflow.serve.*` metrics registry.
struct LoadGenStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;   // Typed admission rejections.
  uint64_t timed_out = 0;  // Shed in queue with kDeadlineExceeded.
  uint64_t failed = 0;     // Any other non-OK response.
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  obs::HistogramSnapshot latency;  // errorflow.serve.latency_seconds.
  obs::HistogramSnapshot batch_requests;

  /// Multi-line human-readable block: throughput, p50/p95/p99 latency, and
  /// the registry's admission/completion counters.
  std::string Summary(
      const obs::MetricsRegistry& registry =
          obs::MetricsRegistry::Global()) const;
};

/// \brief Drives `server` closed-loop. `input_factory(seed)` must return a
/// fresh input batch for the configured model; it is called `input_pool`
/// times before the clients start. The server must already be running.
LoadGenStats RunClosedLoop(
    InferenceServer& server, const LoadGenConfig& config,
    const std::function<tensor::Tensor(uint64_t)>& input_factory);

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_LOAD_GEN_H_
