#include "serve/server.h"

#include <utility>

#include "obs/log.h"
#include "util/string_util.h"

namespace errorflow {
namespace serve {

namespace {

RegistryConfig MakeRegistryConfig(const ServerConfig& config) {
  RegistryConfig rc;
  rc.max_variant_bytes = config.max_variant_bytes;
  rc.num_shards = config.registry_shards;
  rc.verify_variants = config.verify_variants;
  rc.data_driven_quantizer = config.data_driven_quantizer;
  rc.calibration_samples = config.calibration_samples;
  return rc;
}

AdmissionConfig MakeAdmissionConfig(const ServerConfig& config) {
  AdmissionConfig ac;
  ac.norm = config.norm;
  ac.hardware = config.hardware;
  ac.allowed_formats = config.allowed_formats;
  ac.max_queue_depth = config.max_queue_depth;
  ac.data_driven_quantizer = config.data_driven_quantizer;
  return ac;
}

SchedulerConfig MakeSchedulerConfig(const ServerConfig& config) {
  SchedulerConfig sc;
  sc.num_workers = config.num_workers;
  sc.max_batch_rows = config.max_batch_rows;
  sc.slo_p99_seconds = config.slo_p99_seconds;
  sc.min_batch_rows = config.min_batch_rows;
  sc.adapt_interval_batches = config.adapt_interval_batches;
  sc.audit_fraction = config.audit_fraction;
  // Tightness must compare achieved error to the bound in the norm the
  // bound was admitted in.
  sc.audit_norm = config.norm;
  sc.evict_on_violation = config.evict_on_violation;
  return sc;
}

}  // namespace

InferenceServer::InferenceServer(ServerConfig config)
    : config_(std::move(config)),
      registry_(MakeRegistryConfig(config_)),
      admission_(MakeAdmissionConfig(config_)),
      scheduler_(&registry_, MakeSchedulerConfig(config_)) {}

InferenceServer::~InferenceServer() { Shutdown(); }

Status InferenceServer::RegisterModel(std::string name, nn::Model model,
                                      tensor::Shape single_input_shape) {
  obs::Logf(obs::LogLevel::kInfo, "serve: registering model %s",
            name.c_str());
  return registry_.Register(std::move(name), std::move(model),
                            std::move(single_input_shape));
}

Status InferenceServer::RegisterModel(std::string name, nn::Model model,
                                      tensor::Shape single_input_shape,
                                      tensor::Tensor calibration) {
  obs::Logf(obs::LogLevel::kInfo,
            "serve: registering model %s (explicit calibration, %lld rows)",
            name.c_str(),
            static_cast<long long>(
                calibration.size() > 0 ? calibration.dim(0) : 0));
  return registry_.Register(std::move(name), std::move(model),
                            std::move(single_input_shape),
                            std::move(calibration));
}

Status InferenceServer::Start() {
  EF_RETURN_IF_ERROR(scheduler_.Start());
  obs::Logf(obs::LogLevel::kInfo,
            "serve: started (%d workers, max batch %lld rows, queue %lld, "
            "%d registry shards, slo p99 %.1fms%s)",
            config_.num_workers,
            static_cast<long long>(config_.max_batch_rows),
            static_cast<long long>(config_.max_queue_depth),
            registry_.num_shards(), config_.slo_p99_seconds * 1e3,
            config_.slo_p99_seconds > 0.0 ? " [adaptive]" : " [fixed]");
  return Status::OK();
}

Result<AdmissionDecision> InferenceServer::AdmitRequest(
    InferenceRequest* request) {
  if (!scheduler_.running()) {
    return Status::FailedPrecondition("serve: server not running");
  }
  EF_ASSIGN_OR_RETURN(const ModelRegistry::Entry* entry,
                      registry_.Lookup(request->model));

  // Validate the input layout against the registered shape before any
  // queuing: a malformed request must not poison a fused batch.
  const tensor::Shape& expect = entry->single_input_shape;
  const tensor::Tensor& in = request->input;
  bool shape_ok =
      in.ndim() == static_cast<int64_t>(expect.size()) && in.dim(0) >= 1;
  for (size_t i = 1; shape_ok && i < expect.size(); ++i) {
    shape_ok = in.dim(static_cast<int>(i)) == expect[i];
  }
  if (!shape_ok) {
    return Status::InvalidArgument(util::StrFormat(
        "serve: input shape %s incompatible with model shape %s",
        tensor::ShapeToString(in.shape()).c_str(),
        tensor::ShapeToString(expect).c_str()));
  }

  const Clock::time_point now = Clock::now();
  if (request->deadline == Clock::time_point{}) {
    request->deadline = now + config_.default_timeout;
  }
  return admission_.Admit(entry->analysis, entry->flops_per_sample,
                          entry->bytes_per_sample, request->qoi_tolerance,
                          request->deadline, now, scheduler_.queue_depth(),
                          scheduler_.overloaded(),
                          entry->optq_steps.empty() ? nullptr
                                                    : &entry->optq_steps);
}

Result<std::future<InferenceResponse>> InferenceServer::Submit(
    InferenceRequest request) {
  EF_ASSIGN_OR_RETURN(AdmissionDecision decision, AdmitRequest(&request));
  return scheduler_.Enqueue(std::move(request), decision);
}

Status InferenceServer::SubmitAsync(
    InferenceRequest request,
    std::function<void(InferenceResponse&&)> on_complete) {
  auto decision = AdmitRequest(&request);
  if (!decision.ok()) return decision.status();
  return scheduler_.EnqueueAsync(std::move(request), *decision,
                                 std::move(on_complete));
}

Status InferenceServer::Shutdown() {
  if (!scheduler_.running()) return scheduler_.Shutdown();
  obs::Logf(obs::LogLevel::kInfo, "serve: shutting down (draining %lld)",
            static_cast<long long>(scheduler_.queue_depth()));
  return scheduler_.Shutdown();
}

}  // namespace serve
}  // namespace errorflow
