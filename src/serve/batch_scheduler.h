#ifndef ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
#define ERRORFLOW_SERVE_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "util/thread_pool.h"

namespace errorflow {
namespace serve {

/// \brief Scheduler tuning.
struct SchedulerConfig {
  /// util::ThreadPool workers executing fused batches.
  int num_workers = 4;
  /// Cap on sample rows fused into one execution batch.
  int64_t max_batch_rows = 64;
};

/// \brief FIFO request queue plus a dispatcher that fuses compatible
/// requests — same (model, format) — into batches and executes them on a
/// worker pool.
///
/// The dispatcher thread pops the oldest admitted request, sweeps the
/// queue for others with the same key until `max_batch_rows`, and hands
/// the group to the pool. Workers lease the quantized variant from the
/// registry (a cache hit after the first batch), run one fused Predict
/// under the variant's execution lock, then scatter output rows back to
/// the per-request promises. Requests whose deadline passed while queued
/// are shed with kDeadlineExceeded at dispatch time, before any execution.
class BatchScheduler {
 public:
  BatchScheduler(ModelRegistry* registry, SchedulerConfig config);

  /// Calls Shutdown() if still running.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Starts the dispatcher thread and the worker pool. Idempotent.
  Status Start();

  /// Enqueues an admitted request. The future completes when the request
  /// executes, is shed on timeout, or fails.
  std::future<InferenceResponse> Enqueue(InferenceRequest request,
                                         AdmissionDecision decision);

  /// Admitted requests not yet dispatched (the admission backpressure
  /// signal).
  int64_t queue_depth() const;

  /// Drains the queue (every queued request still executes or is shed),
  /// then stops the dispatcher and joins the workers. Idempotent.
  Status Shutdown();

  bool running() const;

 private:
  struct Pending {
    InferenceRequest request;
    AdmissionDecision decision;
    std::promise<InferenceResponse> promise;
    Clock::time_point enqueue_time;
  };

  void DispatchLoop();
  /// Runs on a pool worker: executes one fused group.
  void ExecuteGroup(std::vector<Pending> group);
  /// Fulfills every promise in `group` with `status`.
  static void FailGroup(std::vector<Pending>* group, const Status& status);

  ModelRegistry* registry_;
  SchedulerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
  std::unique_ptr<util::ThreadPool> pool_;

  // docs/SERVING.md metric conventions.
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* completed_;
  obs::Counter* timeouts_;
  obs::Counter* exec_failures_;
  obs::Histogram* batch_requests_hist_;
  obs::Histogram* batch_rows_hist_;
  obs::Histogram* latency_hist_;
  obs::Histogram* queue_wait_hist_;
  obs::Histogram* exec_hist_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
