#ifndef ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
#define ERRORFLOW_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "util/thread_pool.h"

namespace errorflow {
namespace serve {

/// \brief Scheduler tuning.
struct SchedulerConfig {
  /// util::ThreadPool workers executing fused batches.
  int num_workers = 4;
  /// Cap on sample rows fused into one execution batch.
  int64_t max_batch_rows = 64;

  /// \name Error-budget audit (the bound-violation watchdog).
  ///
  /// A sampled fraction of fused batches is re-executed on the FP32 base
  /// and the achieved per-sample error is compared to each request's
  /// admitted bound, populating errorflow.bound.* (tightness histogram,
  /// violation counter) and annotating a "serve.ledger" trace span per
  /// audited request. FP32-format batches are never audited — they are
  /// the reference.
  /// @{
  /// Fraction of batches audited: 0 disables, 1 audits every batch.
  double audit_fraction = 0.0;
  /// Norm achieved error is measured in; keep equal to the admission norm
  /// so tightness compares like with like.
  tensor::Norm audit_norm = tensor::Norm::kLinf;
  /// When true, a violation invalidates the offending variant in the
  /// registry, so the next batch re-quantizes it from the FP32 base.
  bool evict_on_violation = false;
  /// @}
};

/// \brief FIFO request queue plus a dispatcher that fuses compatible
/// requests — same (model, format) — into batches and executes them on a
/// worker pool.
///
/// The dispatcher thread pops the oldest admitted request, sweeps the
/// queue for others with the same key until `max_batch_rows`, and hands
/// the group to the pool. Workers lease the quantized variant from the
/// registry (a cache hit after the first batch), run one fused Predict
/// under the variant's execution lock, then scatter output rows back to
/// the per-request promises. Requests whose deadline passed while queued
/// are shed with kDeadlineExceeded at dispatch time, before any execution.
class BatchScheduler {
 public:
  BatchScheduler(ModelRegistry* registry, SchedulerConfig config);

  /// Calls Shutdown() if still running.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Starts the dispatcher thread and the worker pool. Idempotent.
  Status Start();

  /// Enqueues an admitted request. The future completes when the request
  /// executes, is shed on timeout, or fails.
  std::future<InferenceResponse> Enqueue(InferenceRequest request,
                                         AdmissionDecision decision);

  /// Callback twin of Enqueue for event-loop callers (the net layer) that
  /// must not park a thread per in-flight request. On OK, `on_complete`
  /// is invoked exactly once — from a dispatcher or worker thread — when
  /// the request executes, is shed, or fails; it must not block. On a
  /// non-OK return the callback is never invoked.
  Status EnqueueAsync(InferenceRequest request, AdmissionDecision decision,
                      std::function<void(InferenceResponse&&)> on_complete);

  /// Admitted requests not yet dispatched (the admission backpressure
  /// signal).
  int64_t queue_depth() const;

  /// Drains the queue (every queued request still executes or is shed),
  /// then stops the dispatcher and joins the workers. Idempotent.
  Status Shutdown();

  bool running() const;

 private:
  struct Pending {
    InferenceRequest request;
    AdmissionDecision decision;
    /// Exactly one completion channel is armed: the promise (Enqueue) or
    /// the callback (EnqueueAsync).
    std::promise<InferenceResponse> promise;
    std::function<void(InferenceResponse&&)> on_complete;
    Clock::time_point enqueue_time;
  };

  /// Fulfills a request through whichever completion channel it carries.
  static void Deliver(Pending* pending, InferenceResponse&& response);
  /// Queues `*pending` if accepting; returns false (leaving `*pending`
  /// untouched, nothing delivered) when stopped.
  bool TryEnqueue(Pending* pending);

  void DispatchLoop();
  /// Runs on a pool worker: executes one fused group.
  void ExecuteGroup(std::vector<Pending> group);
  /// Fulfills every request in `group` with `status`.
  static void FailGroup(std::vector<Pending>* group, const Status& status);
  /// Deterministic audit sampling: true for exactly ceil/floor-alternating
  /// audit_fraction of calls (every call when the fraction is >= 1).
  bool ShouldAudit();
  /// Re-executes `fused` on the FP32 base, records one ledger per request
  /// in `live` against `output`, and (when configured) invalidates the
  /// violating variant. `rows` is the fused row count.
  void AuditGroup(const std::vector<Pending>& live,
                  const tensor::Tensor& fused, const tensor::Tensor& output,
                  int64_t rows);

  ModelRegistry* registry_;
  SchedulerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
  std::unique_ptr<util::ThreadPool> pool_;

  // docs/SERVING.md metric conventions.
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* completed_;
  obs::Counter* timeouts_;
  obs::Counter* exec_failures_;
  obs::Histogram* batch_requests_hist_;
  obs::Histogram* batch_rows_hist_;
  obs::Histogram* latency_hist_;
  obs::Histogram* queue_wait_hist_;
  obs::Histogram* exec_hist_;

  /// Monotonic batch sequence for audit sampling.
  std::atomic<uint64_t> audit_seq_{0};
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
