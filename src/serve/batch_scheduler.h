#ifndef ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
#define ERRORFLOW_SERVE_BATCH_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/model_registry.h"
#include "serve/request.h"
#include "util/thread_pool.h"

namespace errorflow {
namespace serve {

/// \brief Scheduler tuning.
struct SchedulerConfig {
  /// util::ThreadPool workers executing fused batches.
  int num_workers = 4;
  /// Cap on sample rows fused into one execution batch. With an SLO set
  /// this is the adaptive controller's upper limit; without one it is the
  /// fixed fuse budget.
  int64_t max_batch_rows = 64;

  /// \name SLO-aware adaptive batching.
  ///
  /// With `slo_p99_seconds > 0`, the dispatcher resizes the fuse budget
  /// between `min_batch_rows` and `max_batch_rows` against the observed
  /// request-latency p99 (a windowed read of the existing
  /// errorflow.serve.latency_seconds histogram): the budget doubles while
  /// the windowed p99 sits below `slo_headroom * slo_p99_seconds` and
  /// halves when it exceeds the SLO. An over-SLO window also marks the
  /// scheduler overloaded, which (a) sheds queued requests that cannot
  /// finish before their deadline anyway (remaining budget below the
  /// execution-time EWMA) and (b) tightens admission backpressure through
  /// `overloaded()`. Batch composition never changes outputs: fused
  /// execution is bit-identical to per-request execution, so the adaptive
  /// budget trades latency against throughput only.
  /// @{
  /// Target p99 request latency; 0 disables adaptation (fixed
  /// max_batch_rows budget).
  double slo_p99_seconds = 0.0;
  /// Lower limit of the adaptive fuse budget (also its starting value, so
  /// the controller ramps up only while the SLO has headroom).
  int64_t min_batch_rows = 1;
  /// Dispatched batches between controller steps.
  int adapt_interval_batches = 16;
  /// Grow only while windowed p99 < slo_headroom * slo_p99_seconds; the
  /// band between headroom and the SLO holds the budget steady.
  double slo_headroom = 0.7;
  /// @}

  /// \name Error-budget audit (the bound-violation watchdog).
  ///
  /// A sampled fraction of fused batches is re-executed on the FP32 base
  /// and the achieved per-sample error is compared to each request's
  /// admitted bound, populating errorflow.bound.* (tightness histogram,
  /// violation counter) and annotating a "serve.ledger" trace span per
  /// audited request. FP32-format batches are never audited — they are
  /// the reference.
  /// @{
  /// Fraction of batches audited: 0 disables, 1 audits every batch.
  double audit_fraction = 0.0;
  /// Norm achieved error is measured in; keep equal to the admission norm
  /// so tightness compares like with like.
  tensor::Norm audit_norm = tensor::Norm::kLinf;
  /// When true, a violation invalidates the offending variant in the
  /// registry, so the next batch re-quantizes it from the FP32 base.
  bool evict_on_violation = false;
  /// @}
};

/// \brief Deterministic fractional sampler: over any window of N ticks,
/// fires on floor-pattern-exact `fraction * N` of them, with no RNG and no
/// floating-point accumulation.
///
/// The fraction is fixed to a 32-bit numerator at construction and
/// accumulated in integers (Bresenham-style), so the firing pattern stays
/// exact forever: the old floating-point formula
/// `floor((k+1)f) > floor(kf)` silently stops firing once `k * f` crosses
/// 2^53 (consecutive doubles there are 2 apart, so the products collapse
/// onto the same value). Because 2^32 divides 2^64, the accumulator even
/// wraps seamlessly. Thread-safe.
class AuditSampler {
 public:
  /// `fraction` is clamped to [0, 1]; 0 never fires, 1 always fires.
  /// `initial_accumulator` seeds the phase (test hook for pinning
  /// behavior at arbitrary points in the sequence).
  explicit AuditSampler(double fraction, uint64_t initial_accumulator = 0);

  /// Advances the sequence one tick; true on the sampled ticks.
  bool Tick();

  static constexpr uint64_t kScale = 1ull << 32;

 private:
  uint64_t numerator_;
  std::atomic<uint64_t> accumulator_;
};

/// \brief FIFO request queue plus a dispatcher that fuses compatible
/// requests — same (model, format, per-row shape) — into batches and
/// executes them on a worker pool.
///
/// The dispatcher thread pops the oldest admitted request, sweeps the
/// queue for others with the same fuse key until the current fuse budget
/// (fixed `max_batch_rows`, or the adaptive controller's limit when an
/// SLO is configured), and hands the group to the pool. Workers lease the
/// quantized variant from the registry (a cache hit after the first
/// batch), run one fused Predict, then scatter output rows back to the
/// per-request promises. Requests whose deadline passed while queued are
/// shed with kDeadlineExceeded at dispatch time, before any execution;
/// under SLO overload, requests whose remaining deadline budget is below
/// the execution-time EWMA are shed early for the same reason.
class BatchScheduler {
 public:
  BatchScheduler(ModelRegistry* registry, SchedulerConfig config);

  /// Calls Shutdown() if still running.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Starts the dispatcher thread and the worker pool. Idempotent.
  Status Start();

  /// Enqueues an admitted request. The future completes when the request
  /// executes, is shed on timeout, or fails.
  std::future<InferenceResponse> Enqueue(InferenceRequest request,
                                         AdmissionDecision decision);

  /// Callback twin of Enqueue for event-loop callers (the net layer) that
  /// must not park a thread per in-flight request. On OK, `on_complete`
  /// is invoked exactly once — from a dispatcher or worker thread — when
  /// the request executes, is shed, or fails; it must not block. On a
  /// non-OK return the callback is never invoked.
  Status EnqueueAsync(InferenceRequest request, AdmissionDecision decision,
                      std::function<void(InferenceResponse&&)> on_complete);

  /// Admitted requests not yet dispatched (the admission backpressure
  /// signal).
  int64_t queue_depth() const;

  /// Drains the queue (every queued request still executes or is shed),
  /// then stops the dispatcher and joins the workers. Idempotent AND
  /// thread-safe: concurrent callers all block until the drain completes,
  /// and exactly one of them joins the dispatcher.
  Status Shutdown();

  bool running() const;

  /// Current fuse budget in rows (== max_batch_rows when no SLO is set).
  int64_t batch_rows_limit() const {
    return batch_rows_limit_.load(std::memory_order_relaxed);
  }

  /// True while the adaptive controller's last latency window exceeded
  /// the SLO — the signal admission uses to tighten backpressure.
  bool overloaded() const {
    return overloaded_.load(std::memory_order_relaxed);
  }

  /// Forces the overload flag and the execution-time EWMA, so tests can
  /// pin the early-shed path without racing the controller. Test-only.
  void SetOverloadForTest(bool overloaded, double exec_ewma_seconds) {
    overloaded_.store(overloaded, std::memory_order_relaxed);
    exec_ewma_seconds_.store(exec_ewma_seconds, std::memory_order_relaxed);
  }

 private:
  struct Pending {
    InferenceRequest request;
    AdmissionDecision decision;
    /// Exactly one completion channel is armed: the promise (Enqueue) or
    /// the callback (EnqueueAsync).
    std::promise<InferenceResponse> promise;
    std::function<void(InferenceResponse&&)> on_complete;
    Clock::time_point enqueue_time;
  };

  /// Fulfills a request through whichever completion channel it carries.
  static void Deliver(Pending* pending, InferenceResponse&& response);
  /// Queues `*pending` if accepting; returns false (leaving `*pending`
  /// untouched, nothing delivered) when stopped.
  bool TryEnqueue(Pending* pending);

  void DispatchLoop();
  /// One adaptive-controller step: reads the latency histogram's windowed
  /// p99 and resizes the fuse budget. Dispatcher thread only.
  void AdaptStep();
  /// Runs on a pool worker: executes one fused group.
  void ExecuteGroup(std::vector<Pending> group);
  /// Fulfills every request in `group` with `status`.
  static void FailGroup(std::vector<Pending>* group, const Status& status);
  /// Re-executes `fused` on the FP32 base, records one ledger per request
  /// in `live` against `output`, and (when configured) invalidates the
  /// violating variant. `rows` is the fused row count.
  void AuditGroup(const std::vector<Pending>& live,
                  const tensor::Tensor& fused, const tensor::Tensor& output,
                  int64_t rows);

  ModelRegistry* registry_;
  SchedulerConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signals shutdown completion to concurrent Shutdown() callers.
  std::condition_variable shutdown_cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;
  std::unique_ptr<util::ThreadPool> pool_;

  /// Adaptive fuse budget; fixed at max_batch_rows when no SLO is set.
  std::atomic<int64_t> batch_rows_limit_;
  std::atomic<bool> overloaded_{false};
  /// EWMA of fused-batch execution seconds (the early-shed horizon).
  std::atomic<double> exec_ewma_seconds_{0.0};
  /// Dispatcher-thread state for the controller cadence and its windowed
  /// histogram read.
  int batches_since_adapt_ = 0;
  obs::HistogramSnapshot adapt_baseline_;

  // docs/SERVING.md metric conventions.
  obs::Gauge* queue_depth_gauge_;
  obs::Counter* completed_;
  obs::Counter* timeouts_;
  obs::Counter* exec_failures_;
  obs::Histogram* batch_requests_hist_;
  obs::Histogram* batch_rows_hist_;
  obs::Histogram* latency_hist_;
  obs::Histogram* queue_wait_hist_;
  obs::Histogram* exec_hist_;
  obs::Gauge* batch_limit_gauge_;
  obs::Counter* grows_;
  obs::Counter* shrinks_;
  obs::Counter* early_sheds_;

  /// Deterministic audit sampling over the fused-batch sequence.
  AuditSampler audit_sampler_;
};

}  // namespace serve
}  // namespace errorflow

#endif  // ERRORFLOW_SERVE_BATCH_SCHEDULER_H_
