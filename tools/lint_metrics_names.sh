#!/usr/bin/env bash
# Lints the observability docs against the code: every `errorflow.*`
# metric name registered anywhere in src/ must appear in the
# docs/OBSERVABILITY.md inventory, so the docs table cannot silently rot
# as instrumentation is added. Dynamic name families built with a trailing
# prefix (e.g. "errorflow.bound.tightness." + model + "." + format) are
# checked by their stripped prefix, which the inventory documents with a
# `<model>.<format>`-style placeholder row.
#
# Usage: lint_metrics_names.sh [src-dir] [docs-file]
# Registered as the `metrics_names_lint` ctest.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
src_dir="${1:-$root/src}"
doc_file="${2:-$root/docs/OBSERVABILITY.md}"

if [ ! -d "$src_dir" ]; then
  echo "lint_metrics_names: no such source dir: $src_dir" >&2
  exit 2
fi
if [ ! -f "$doc_file" ]; then
  echo "lint_metrics_names: no such docs file: $doc_file" >&2
  exit 2
fi

# String literals that look like metric names; trailing dots mark dynamic
# prefixes and are stripped before the docs lookup.
names="$(grep -rhoE '"errorflow(\.[a-z0-9_]+)+\.?"' "$src_dir" \
  --include='*.cc' --include='*.h' | tr -d '"' | sed 's/\.$//' | sort -u)"

if [ -z "$names" ]; then
  echo "lint_metrics_names: found no errorflow.* literals under $src_dir" >&2
  exit 2
fi

missing=0
total=0
while IFS= read -r name; do
  total=$((total + 1))
  if ! grep -qF "$name" "$doc_file"; then
    echo "UNDOCUMENTED metric: $name (add it to $doc_file)" >&2
    missing=$((missing + 1))
  fi
done <<EOF
$names
EOF

if [ "$missing" -ne 0 ]; then
  echo "lint_metrics_names: $missing of $total registered names missing" \
    "from $doc_file" >&2
  exit 1
fi
echo "lint_metrics_names: all $total registered metric names documented"
