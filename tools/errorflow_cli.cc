// errorflow — command-line front end for the ErrorFlow library.
//
//   errorflow inspect   <model.efm> --input-shape 1,9
//   errorflow bound     <model.efm> --input-shape 1,9 --input-err 1e-4
//                       [--norm linf|l2] [--format fp16] [--per-feature]
//                       [--attribution]
//   errorflow plan      <model.efm> --input-shape 1,9 --tol 1e-3
//                       [--frac 0.5] [--norm linf|l2]
//   errorflow quantize  <model.efm> --input-shape 1,9
//                       [--quantizer optq|spfq] [--calib-rows 64]
//                       [--calib-seed 1] [--norm linf|l2]
//   errorflow compress  --backend sz|zfp|mgard --tol 1e-3
//                       [--norm linf|l2] [--rel] [--size 512x512]
//   errorflow demo-train <out.efm> [--task h2|borghesi|eurosat]
//   errorflow run       [--task h2|borghesi|eurosat] [--tol 1e-3]
//                       [--backend sz|zfp|mgard] [--norm linf|l2]
//                       [--frac 0.5] [--batches 3]
//   errorflow serve-bench [--task h2|borghesi|eurosat] [--concurrency 8]
//                       [--duration 5] [--workers 4] [--max-batch 64]
//                       [--queue-cap 1024] [--tolerances 1e-3,1e-2,1e-1]
//                       [--timeout-ms <ServerConfig default>] [--rows 8]
//                       [--strict] [--audit 0.1] [--evict-on-violation]
//                       [--models 1] [--slo-ms 0] [--min-batch 1]
//                       [--verify-variants] [--quantizer optq|spfq]
//                       [--shards 1,2,4,8]
//                       [--json BENCH_serve.json]
//   errorflow net-bench [--task h2|borghesi|eurosat] [--rates 200,4000]
//                       [--phase-seconds 2] [--connections 32]
//                       [--workers 4] [--max-batch 64] [--queue-cap 256]
//                       [--rows 8] [--tol 1e-2] [--deadline-ms 0]
//                       [--timeout-ms <ServerConfig default>]
//                       [--json BENCH_net.json]
//
// Global flags, valid with every subcommand:
//   --model-cache-dir <dir>     model artifact cache (default:
//                               $ERRORFLOW_CACHE_DIR or ./ef_model_cache)
//
// Observability flags, valid with every subcommand:
//   --metrics-out <path.json>   dump the metrics registry on exit
//   --trace-out <path.json>     dump Chrome trace_event JSON on exit
//                               (open in chrome://tracing or Perfetto)
//   --metrics-export-dir <dir>  live exporter: periodically write
//                               <dir>/metrics.prom (Prometheus text) and
//                               <dir>/metrics.json (atomic replace)
//   --metrics-export-interval <seconds>  export period (default 5)
//   --log-level debug|info|warn|error
//   --log-json <path.jsonl>     mirror logs to a JSON-lines file
//
// Exit code 0 on success; 1 on user error; 2 on internal failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/allocator.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "data/combustion.h"
#include "net/load_rig.h"
#include "net/net_server.h"
#include "nn/serialize.h"
#include "obs/exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quant/optq.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "tasks/tasks.h"
#include "tensor/stats.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace errorflow;

namespace {

// ----- minimal flag parsing -------------------------------------------

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) != 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) == 0) {
      const std::string name = tok.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[name] = argv[++i];
      } else {
        args.flags[name] = "true";
      }
    } else {
      args.positional.push_back(tok);
    }
  }
  return args;
}

int Fail(const char* msg) {
  std::fprintf(stderr, "error: %s\n", msg);
  return 1;
}

// ----- shared helpers ---------------------------------------------------

Result<tensor::Shape> ParseShape(const std::string& spec) {
  tensor::Shape shape;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string part = spec.substr(pos, next - pos);
    const int64_t dim = std::atoll(part.c_str());
    if (dim <= 0) {
      return Status::InvalidArgument("bad shape component: " + part);
    }
    shape.push_back(dim);
    pos = next + 1;
  }
  if (shape.empty()) return Status::InvalidArgument("empty shape");
  return shape;
}

Result<tensor::Norm> ParseNorm(const std::string& name) {
  if (name == "linf" || name == "Linf") return tensor::Norm::kLinf;
  if (name == "l2" || name == "L2") return tensor::Norm::kL2;
  return Status::InvalidArgument("unknown norm: " + name +
                                 " (use linf or l2)");
}

Result<quant::NumericFormat> ParseFormat(const std::string& name) {
  for (quant::NumericFormat f :
       {quant::NumericFormat::kFP32, quant::NumericFormat::kTF32,
        quant::NumericFormat::kFP16, quant::NumericFormat::kBF16,
        quant::NumericFormat::kINT8}) {
    if (name == quant::FormatToString(f)) return f;
  }
  return Status::InvalidArgument("unknown format: " + name);
}

Result<quant::WeightQuantizer> ParseQuantizer(const std::string& name) {
  for (quant::WeightQuantizer q :
       {quant::WeightQuantizer::kMaxAffine, quant::WeightQuantizer::kOptq,
        quant::WeightQuantizer::kSpfq}) {
    if (name == quant::QuantizerToString(q)) return q;
  }
  return Status::InvalidArgument("unknown quantizer: " + name +
                                 " (use max-affine|optq|spfq)");
}

Result<compress::Backend> ParseBackend(const std::string& name) {
  for (compress::Backend b : compress::AllBackends()) {
    if (name == compress::BackendToString(b)) return b;
  }
  return Status::InvalidArgument("unknown backend: " + name);
}

// Global --model-cache-dir flag; empty lets GetTask resolve
// $ERRORFLOW_CACHE_DIR / ./ef_model_cache.
std::string CacheDir(const Args& args) {
  return args.Get("model-cache-dir", "");
}

Result<core::ErrorFlowAnalysis> LoadAnalysis(const std::string& path,
                                             const std::string& shape_spec) {
  EF_ASSIGN_OR_RETURN(nn::Model model, nn::LoadModel(path));
  EF_ASSIGN_OR_RETURN(tensor::Shape shape, ParseShape(shape_spec));
  return core::ErrorFlowAnalysis(core::ProfileModel(model, shape));
}

// ----- subcommands -------------------------------------------------------

int CmdInspect(const Args& args) {
  if (args.positional.empty()) return Fail("inspect: model path required");
  auto analysis =
      LoadAnalysis(args.positional[0], args.Get("input-shape", "1,9"));
  if (!analysis.ok()) return Fail(analysis.status().ToString().c_str());
  std::printf("%s", core::ProfileReport(*analysis).c_str());
  std::printf("\n  fp16 quantization-term breakdown (marginal):\n");
  for (const core::LayerContribution& c : core::QuantTermBreakdown(
           *analysis, quant::NumericFormat::kFP16)) {
    std::printf("    %-30s q=%.3e  contributes %.3e\n",
                c.layer.substr(0, 30).c_str(), c.step_size, c.contribution);
  }
  return 0;
}

int CmdBound(const Args& args) {
  if (args.positional.empty()) return Fail("bound: model path required");
  auto analysis =
      LoadAnalysis(args.positional[0], args.Get("input-shape", "1,9"));
  if (!analysis.ok()) return Fail(analysis.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());
  auto format = ParseFormat(args.Get("format", "fp32"));
  if (!format.ok()) return Fail(format.status().ToString().c_str());
  const double input_err = args.GetDouble("input-err", 0.0);

  std::printf("bound(|dx|_%s = %.3e, %s) = %.6e\n",
              args.Get("norm", "linf").c_str(), input_err,
              quant::FormatToString(*format),
              analysis->Bound(input_err, *norm, *format));
  if (args.Has("attribution")) {
    const core::BoundAttribution att =
        analysis->Attribution(input_err, *norm, *format);
    std::printf(
        "\nerror-budget attribution (exact additive decomposition):\n");
    std::printf("  compression-input term : %.6e  (gain %.3e x |dx|_2 "
                "%.3e)\n",
                att.compression_term, att.gain, att.input_err_l2);
    std::printf("  quantization term      : %.6e over %zu layers\n",
                att.quant_term, att.layers.size());
    for (const core::LayerAttribution& row : att.layers) {
      const double pct =
          att.total > 0.0 ? 100.0 * row.quant_share / att.total : 0.0;
      std::printf(
          "    [%2lld] %-26s q=%.3e  sigma=%.3f  amp=%.3f  share=%.6e "
          "(%5.1f%%)\n",
          static_cast<long long>(row.index),
          row.layer.substr(0, 26).c_str(), row.step_size, row.sigma,
          row.amplification, row.quant_share, pct);
    }
    std::printf("  total                  : %.6e\n", att.total);
  }
  if (args.Has("per-feature")) {
    const size_t n = analysis->profile().final_row_norms.size();
    for (size_t k = 0; k < n; ++k) {
      std::printf("  feature %2zu: %.6e\n", k,
                  analysis->PerFeatureBound(static_cast<int64_t>(k),
                                            input_err, *norm, *format));
    }
  }
  return 0;
}

int CmdPlan(const Args& args) {
  if (args.positional.empty()) return Fail("plan: model path required");
  auto analysis =
      LoadAnalysis(args.positional[0], args.Get("input-shape", "1,9"));
  if (!analysis.ok()) return Fail(analysis.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());
  const double tol = args.GetDouble("tol", 1e-3);

  core::AllocationConfig cfg;
  cfg.norm = *norm;
  cfg.quant_fraction = args.GetDouble("frac", 0.5);
  const core::AllocationPlan plan =
      core::AllocateTolerance(*analysis, tol, cfg);
  std::printf("QoI tolerance          : %.3e (%s)\n", tol,
              args.Get("norm", "linf").c_str());
  std::printf("chosen weight format   : %s\n",
              quant::FormatToString(plan.format));
  std::printf("quantization bound     : %.3e\n", plan.quant_bound);
  std::printf("compression tolerance  : %.3e\n", plan.input_tolerance);
  std::printf("predicted total bound  : %.3e\n", plan.predicted_total_bound);
  return 0;
}

// Data-driven INT8 weight quantization (src/quant/optq.h): calibrate on a
// synthesized uniform [-1, 1] batch, print the per-layer effective steps,
// and compare the measured-step bound against the worst-case Table-I INT8
// bound, verifying both against the achieved error on a probe batch.
int CmdQuantize(const Args& args) {
  if (args.positional.empty()) return Fail("quantize: model path required");
  auto model = nn::LoadModel(args.positional[0]);
  if (!model.ok()) return Fail(model.status().ToString().c_str());
  auto shape = ParseShape(args.Get("input-shape", "1,9"));
  if (!shape.ok()) return Fail(shape.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());
  auto quantizer = ParseQuantizer(args.Get("quantizer", "optq"));
  if (!quantizer.ok()) return Fail(quantizer.status().ToString().c_str());
  if (*quantizer == quant::WeightQuantizer::kMaxAffine) {
    return Fail("quantize: pick a data-driven quantizer (optq|spfq); "
                "max-affine is the default serving path");
  }
  const int64_t calib_rows =
      static_cast<int64_t>(args.GetDouble("calib-rows", 64));
  if (calib_rows < 1) return Fail("bad --calib-rows");

  core::ErrorFlowAnalysis analysis(core::ProfileModel(*model, *shape));
  tensor::Shape batch_shape = *shape;
  batch_shape[0] = calib_rows;
  tensor::Tensor calibration(batch_shape);
  util::Rng rng(static_cast<uint64_t>(args.GetDouble("calib-seed", 1)));
  for (int64_t i = 0; i < calibration.size(); ++i) {
    calibration[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }

  quant::OptqQuantizedModel q =
      quant::OptqQuantizeWeights(*model, calibration, *quantizer);
  std::printf("quantizer     : %s (%lld calibration rows)\n",
              quant::QuantizerToString(*quantizer),
              static_cast<long long>(calib_rows));
  std::printf("%-26s %12s %10s %12s %12s\n", "layer", "shape", "calib",
              "table_step", "eff_step");
  for (const quant::OptqLayerRecord& r : q.layers) {
    char dims[32];
    std::snprintf(dims, sizeof(dims), "%lldx%lld",
                  static_cast<long long>(r.rows),
                  static_cast<long long>(r.cols));
    std::printf("%-26s %12s %10lld %12.3e %12.3e\n",
                r.layer.substr(0, 26).c_str(), dims,
                static_cast<long long>(r.calib_columns), r.table_step,
                r.effective_step);
  }

  const std::vector<double> steps = quant::OptqEffectiveSteps(q);
  const double table_bound =
      analysis.Bound(0.0, *norm, quant::NumericFormat::kINT8);
  const double data_bound =
      analysis.BoundWithSteps(0.0, *norm, core::VectorStepFn(steps));
  // Probe on a fresh batch from the same distribution: both bounds must
  // cover what the quantized model actually does.
  tensor::Tensor probe(batch_shape);
  util::Rng probe_rng(0xbeefull);
  for (int64_t i = 0; i < probe.size(); ++i) {
    probe[i] = static_cast<float>(probe_rng.Uniform(-1.0, 1.0));
  }
  const tensor::Tensor ref = model->Predict(probe);
  const tensor::Tensor got = q.model.Predict(probe);
  double achieved = 0.0;
  for (int64_t r = 0; r < ref.dim(0); ++r) {
    const int64_t w = ref.size() / ref.dim(0);
    tensor::Tensor a({1, w}), b({1, w});
    std::copy(ref.data() + r * w, ref.data() + (r + 1) * w, a.data());
    std::copy(got.data() + r * w, got.data() + (r + 1) * w, b.data());
    achieved = std::max(achieved, tensor::DiffNorm(a, b, *norm));
  }

  std::printf("\ntable-I int8 bound    : %.6e (%s)\n", table_bound,
              args.Get("norm", "linf").c_str());
  std::printf("data-driven bound     : %.6e (%.2fx tighter)\n", data_bound,
              data_bound > 0.0 ? table_bound / data_bound : 0.0);
  std::printf("achieved probe error  : %.6e  %s\n", achieved,
              achieved <= data_bound ? "(covered)" : "(VIOLATED)");
  return achieved <= data_bound ? 0 : 2;
}

int CmdCompress(const Args& args) {
  auto backend = ParseBackend(args.Get("backend", "sz"));
  if (!backend.ok()) return Fail(backend.status().ToString().c_str());
  auto codec = compress::ParseCodecName(args.Get(
      "codec", compress::CodecIdToString(compress::kDefaultCodec)));
  if (!codec.ok()) return Fail(codec.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());

  int64_t rows = 512, cols = 512;
  const std::string size = args.Get("size", "512x512");
  if (std::sscanf(size.c_str(), "%lldx%lld",
                  reinterpret_cast<long long*>(&rows),
                  reinterpret_cast<long long*>(&cols)) != 2 || rows <= 0 ||
      cols <= 0) {
    return Fail("bad --size (use e.g. 512x512)");
  }
  // Demo field: one H2 species slice (smooth, vortex-structured).
  const tensor::Tensor field =
      data::GenerateH2SpeciesField(rows, cols, /*seed=*/7);
  tensor::Tensor slice({rows, cols});
  std::copy(field.data(), field.data() + rows * cols, slice.data());

  compress::ErrorBound eb;
  eb.norm = *norm;
  eb.relative = args.Has("rel");
  eb.tolerance = args.GetDouble("tol", 1e-3);
  auto compressor = compress::MakeCompressor(*backend, *codec);
  auto comp = compressor->Compress(slice, eb);
  if (!comp.ok()) return Fail(comp.status().ToString().c_str());
  auto dec = compressor->Decompress(comp->blob);
  if (!dec.ok()) return Fail(dec.status().ToString().c_str());

  std::printf("backend      : %s\n", compressor->name().c_str());
  std::printf("codec        : %s\n", compress::CodecIdToString(*codec));
  std::printf("field        : %lld x %lld (%s)\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              util::HumanBytes(static_cast<double>(slice.byte_size()))
                  .c_str());
  std::printf("ratio        : %.2fx\n", comp->ratio());
  std::printf("compress     : %s\n",
              util::HumanThroughput(slice.byte_size() / comp->seconds)
                  .c_str());
  std::printf("decompress   : %s\n",
              util::HumanThroughput(slice.byte_size() / dec->seconds)
                  .c_str());
  std::printf("achieved err : %.3e (%s)\n",
              tensor::DiffNorm(slice, dec->data, *norm),
              args.Get("norm", "linf").c_str());
  return 0;
}

int CmdDemoTrain(const Args& args) {
  if (args.positional.empty()) {
    return Fail("demo-train: output path required");
  }
  const std::string name = args.Get("task", "h2");
  tasks::TaskKind kind;
  if (name == "h2") {
    kind = tasks::TaskKind::kH2Combustion;
  } else if (name == "borghesi") {
    kind = tasks::TaskKind::kBorghesiFlame;
  } else if (name == "eurosat") {
    kind = tasks::TaskKind::kEuroSat;
  } else {
    return Fail("unknown task (use h2|borghesi|eurosat)");
  }
  tasks::TrainedTask task =
      tasks::GetTask(kind, tasks::Regularization::kPsn, 1, CacheDir(args));
  const Status st = nn::SaveModel(task.model, args.positional[0]);
  if (!st.ok()) return Fail(st.ToString().c_str());
  std::printf("trained '%s' saved to %s\n", task.name.c_str(),
              args.positional[0].c_str());
  std::printf("input shape for inspect/bound/plan: %s\n",
              tensor::ShapeToString(task.single_input_shape).c_str());
  return 0;
}

Result<tasks::TaskKind> ParseTask(const std::string& name) {
  if (name == "h2") return tasks::TaskKind::kH2Combustion;
  if (name == "borghesi") return tasks::TaskKind::kBorghesiFlame;
  if (name == "eurosat") return tasks::TaskKind::kEuroSat;
  return Status::InvalidArgument("unknown task (use h2|borghesi|eurosat)");
}

int CmdRun(const Args& args) {
  auto kind = ParseTask(args.Get("task", "h2"));
  if (!kind.ok()) return Fail(kind.status().ToString().c_str());
  auto backend = ParseBackend(args.Get("backend", "sz"));
  if (!backend.ok()) return Fail(backend.status().ToString().c_str());
  auto codec = compress::ParseCodecName(args.Get(
      "codec", compress::CodecIdToString(compress::kDefaultCodec)));
  if (!codec.ok()) return Fail(codec.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());
  const double tol = args.GetDouble("tol", 1e-3);
  const int batches = static_cast<int>(args.GetDouble("batches", 3));
  if (batches <= 0) return Fail("bad --batches");

  tasks::TrainedTask task =
      tasks::GetTask(*kind, tasks::Regularization::kPsn, 1, CacheDir(args));
  core::PipelineConfig cfg;
  cfg.backend = *backend;
  cfg.codec = *codec;
  cfg.norm = *norm;
  cfg.quant_fraction = args.GetDouble("frac", 0.5);
  core::InferencePipeline pipeline(std::move(task.model),
                                   task.single_input_shape, cfg);

  std::printf("pipeline: task=%s backend=%s norm=%s tol=%.3e batches=%d\n",
              args.Get("task", "h2").c_str(),
              compress::BackendToString(*backend),
              args.Get("norm", "linf").c_str(), tol, batches);
  for (int b = 0; b < batches; ++b) {
    const std::vector<tensor::Tensor> inputs =
        tasks::FreshInputBatches(task, 1, 100 + static_cast<uint64_t>(b));
    auto report = pipeline.Run(inputs[0], tol);
    if (!report.ok()) return Fail(report.status().ToString().c_str());
    std::printf("batch %d:\n%s", b, report->Summary().c_str());
  }
  const core::PipelineReport total =
      core::PipelineReport::AggregateFromRegistry();
  std::printf("aggregate over %llu run(s):\n%s",
              static_cast<unsigned long long>(
                  obs::MetricsRegistry::Global().CounterValue(
                      "errorflow.pipeline.runs")),
              total.Summary().c_str());
  return 0;
}

// Comma-separated list of doubles, e.g. "1e-3,1e-2".
Result<std::vector<double>> ParseDoubleList(const std::string& spec) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string part = spec.substr(pos, next - pos);
    const double v = std::atof(part.c_str());
    if (!(v > 0.0)) {
      return Status::InvalidArgument("bad tolerance: " + part);
    }
    values.push_back(v);
    pos = next + 1;
  }
  if (values.empty()) return Status::InvalidArgument("empty tolerance list");
  return values;
}

// Comma-separated list of positive ints, e.g. "1,2,4,8".
Result<std::vector<int>> ParseIntList(const std::string& spec) {
  EF_ASSIGN_OR_RETURN(std::vector<double> values, ParseDoubleList(spec));
  std::vector<int> ints;
  ints.reserve(values.size());
  for (double v : values) ints.push_back(static_cast<int>(v));
  return ints;
}

bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

int CmdServeBench(const Args& args) {
  auto kind = ParseTask(args.Get("task", "h2"));
  if (!kind.ok()) return Fail(kind.status().ToString().c_str());
  auto norm = ParseNorm(args.Get("norm", "linf"));
  if (!norm.ok()) return Fail(norm.status().ToString().c_str());
  auto tolerances = ParseDoubleList(args.Get("tolerances", "1e-3,1e-2,1e-1"));
  if (!tolerances.ok()) return Fail(tolerances.status().ToString().c_str());
  const int concurrency = static_cast<int>(args.GetDouble("concurrency", 8));
  const double duration = args.GetDouble("duration", 5.0);
  const int workers = static_cast<int>(args.GetDouble("workers", 4));
  const int rows = static_cast<int>(args.GetDouble("rows", 8));
  const int num_models = static_cast<int>(args.GetDouble("models", 1));
  const double slo_ms = args.GetDouble("slo-ms", 0.0);
  const int min_batch = static_cast<int>(args.GetDouble("min-batch", 1));
  if (concurrency < 1 || duration <= 0.0 || workers < 1 || rows < 1 ||
      num_models < 1 || slo_ms < 0.0 || min_batch < 1) {
    return Fail(
        "bad --concurrency/--duration/--workers/--rows/--models/"
        "--slo-ms/--min-batch");
  }
  // Sweep mode: run the closed loop once per shard count and emit one
  // BENCH_serve.json record per point. Without --shards: one run at the
  // ServerConfig default, text output only.
  std::vector<int> shard_points;
  if (args.Has("shards")) {
    auto parsed = ParseIntList(args.Get("shards"));
    if (!parsed.ok()) return Fail(parsed.status().ToString().c_str());
    shard_points = *parsed;
  } else {
    shard_points = {serve::ServerConfig{}.registry_shards};
  }

  tasks::TrainedTask task =
      tasks::GetTask(*kind, tasks::Regularization::kPsn, 1, CacheDir(args));
  const std::string base_name = tasks::TaskKindToString(*kind);
  // --models M registers M clones of the task model; the load generator
  // cycles requests across them so variant leases spread over registry
  // shards instead of convoying on one key.
  std::vector<std::string> model_names;
  for (int m = 0; m < num_models; ++m) {
    model_names.push_back(num_models == 1
                              ? base_name
                              : base_name + "_" + std::to_string(m));
  }

  serve::ServerConfig cfg;
  cfg.num_workers = workers;
  cfg.max_batch_rows =
      static_cast<int64_t>(args.GetDouble("max-batch", 64));
  cfg.max_queue_depth =
      static_cast<int64_t>(args.GetDouble("queue-cap", 1024));
  cfg.norm = *norm;
  cfg.slo_p99_seconds = slo_ms * 1e-3;
  cfg.min_batch_rows = min_batch;
  cfg.verify_variants = args.Has("verify-variants");
  // One shared knob: --timeout-ms defaults to the library's
  // ServerConfig::default_timeout, and (in net-bench) also seeds the
  // wire layer's idle timeout, so the in-process deadline, the wire
  // deadline, and the slow-loris reclamation horizon never drift apart.
  cfg.default_timeout = std::chrono::milliseconds(static_cast<int64_t>(
      args.GetDouble("timeout-ms",
                     static_cast<double>(
                         serve::ServerConfig{}.default_timeout.count()))));
  if (args.Has("strict")) {
    // No FP32 fallback: tolerances below the tightest reduced-precision
    // bound are rejected instead of served at full precision.
    cfg.allowed_formats = quant::ReducedFormats();
  }
  // Bound-violation watchdog: --audit <fraction> samples that share of
  // fused batches for FP32-reference re-execution (errorflow.bound.*).
  cfg.audit_fraction = args.GetDouble("audit", 0.0);
  if (cfg.audit_fraction < 0.0 || cfg.audit_fraction > 1.0) {
    return Fail("bad --audit (use a fraction in [0, 1])");
  }
  cfg.evict_on_violation = args.Has("evict-on-violation");
  // --quantizer optq|spfq turns on the data-driven INT8 path: register
  // prices the calibrated bound, admission offers the extra INT8
  // candidate, and the watchdog audits it like any other variant.
  auto quantizer = ParseQuantizer(args.Get("quantizer", "max-affine"));
  if (!quantizer.ok()) return Fail(quantizer.status().ToString().c_str());
  cfg.data_driven_quantizer = *quantizer;

  std::printf(
      "serve-bench: task=%s models=%d concurrency=%d duration=%.1fs "
      "workers=%d max-batch=%lld rows/request=%d tolerances=%s%s "
      "audit=%.2f%s slo=%.1fms min-batch=%d%s shards=%s\n",
      base_name.c_str(), num_models, concurrency, duration, workers,
      static_cast<long long>(cfg.max_batch_rows), rows,
      args.Get("tolerances", "1e-3,1e-2,1e-1").c_str(),
      args.Has("strict") ? " (strict)" : "", cfg.audit_fraction,
      cfg.evict_on_violation ? " (evict-on-violation)" : "", slo_ms,
      min_batch, cfg.verify_variants ? " (verify-variants)" : "",
      args.Get("shards", "default").c_str());
  if (cfg.data_driven_quantizer != quant::WeightQuantizer::kMaxAffine) {
    std::printf("  data-driven int8: %s\n",
                quant::QuantizerToString(cfg.data_driven_quantizer));
  }

  const auto input_factory = [&task, rows](uint64_t seed) {
    std::vector<tensor::Tensor> batches =
        tasks::FreshInputBatches(task, 1, seed);
    tensor::Tensor& full = batches[0];
    const int64_t take = std::min<int64_t>(rows, full.dim(0));
    tensor::Shape shape = full.shape();
    shape[0] = take;
    tensor::Tensor out(shape);
    std::copy(full.data(), full.data() + out.size(), out.data());
    return out;
  };

  std::string records;
  for (size_t p = 0; p < shard_points.size(); ++p) {
    const int shards = shard_points[p];
    if (shards < 1) return Fail("bad --shards (counts must be >= 1)");
    // Per-point metrics window: histograms and counters start at zero for
    // every shard count, so the summary and JSON record cover one point.
    obs::MetricsRegistry::Global().Reset();
    cfg.registry_shards = shards;
    serve::InferenceServer server(cfg);
    for (const std::string& name : model_names) {
      Status st = server.RegisterModel(name, task.model.Clone(),
                                       task.single_input_shape);
      if (!st.ok()) return Fail(st.ToString().c_str());
    }
    Status st = server.Start();
    if (!st.ok()) return Fail(st.ToString().c_str());

    serve::LoadGenConfig load;
    load.model = model_names[0];
    load.models = model_names;
    load.concurrency = concurrency;
    load.duration_seconds = duration;
    load.tolerance_mix = *tolerances;
    load.request_timeout = cfg.default_timeout;
    load.seed = 1 + static_cast<uint64_t>(p);
    const serve::LoadGenStats stats =
        serve::RunClosedLoop(server, load, input_factory);
    st = server.Shutdown();
    if (!st.ok()) return Fail(st.ToString().c_str());

    std::printf("--- %d shard(s) ---\n%s", shards,
                stats.Summary().c_str());
    std::printf(
        "  variants resident   : %lld (%s) across %d shard(s)\n",
        static_cast<long long>(server.registry().variant_count()),
        util::HumanBytes(
            static_cast<double>(server.registry().variant_bytes()))
            .c_str(),
        server.registry().num_shards());

    char rec[384];
    std::snprintf(
        rec, sizeof(rec),
        "    {\"shards\": %d, \"req_per_s\": %.1f, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"submitted\": %llu, \"completed\": %llu, "
        "\"timed_out\": %llu, \"rejected\": %llu, "
        "\"batch_rows_limit\": %.0f}",
        shards, stats.throughput_rps, stats.latency.p50() * 1e3,
        stats.latency.p99() * 1e3,
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.timed_out),
        static_cast<unsigned long long>(stats.rejected),
        obs::MetricsRegistry::Global().GaugeValue(
            "errorflow.serve.adaptive.batch_rows_limit"));
    if (!records.empty()) records += ",\n";
    records += rec;
  }

  if (args.Has("shards")) {
    char header[384];
    std::snprintf(header, sizeof(header),
                  "{\n  \"bench\": \"serve_shard_sweep\",\n"
                  "  \"task\": \"%s\",\n  \"models\": %d,\n"
                  "  \"concurrency\": %d,\n  \"workers\": %d,\n"
                  "  \"rows_per_request\": %d,\n"
                  "  \"duration_seconds\": %.1f,\n"
                  "  \"slo_ms\": %.1f,\n  \"min_batch_rows\": %d,\n"
                  "  \"verify_variants\": %s,\n"
                  "  \"records\": [\n",
                  base_name.c_str(), num_models, concurrency, workers,
                  rows, duration, slo_ms, min_batch,
                  cfg.verify_variants ? "true" : "false");
    const std::string json_path = args.Get("json", "BENCH_serve.json");
    if (!WriteFileOrWarn(json_path,
                         std::string(header) + records + "\n  ]\n}\n")) {
      return 2;
    }
    std::printf("wrote %s (%zu shard point(s))\n", json_path.c_str(),
                shard_points.size());
  }
  return 0;
}

// Open-loop Poisson load against the TCP wire stack: brings up an
// InferenceServer + NetServer pair on an ephemeral loopback port, then
// runs `net::RunNetLoad` once per offered rate and appends one JSON
// record per rate to a BENCH_conv.json-style file. Rates above the
// server's saturation point surface shed/backpressure counts instead of
// silently inflating latency (open loop — arrivals do not wait).
int CmdNetBench(const Args& args) {
  auto kind = ParseTask(args.Get("task", "h2"));
  if (!kind.ok()) return Fail(kind.status().ToString().c_str());
  auto rates = ParseDoubleList(args.Get("rates", "200,4000"));
  if (!rates.ok()) return Fail(rates.status().ToString().c_str());
  const double phase_seconds = args.GetDouble("phase-seconds", 2.0);
  const int connections = static_cast<int>(args.GetDouble("connections", 32));
  const int workers = static_cast<int>(args.GetDouble("workers", 4));
  const int rows = static_cast<int>(args.GetDouble("rows", 8));
  const double tol = args.GetDouble("tol", 1e-2);
  const int deadline_ms = static_cast<int>(args.GetDouble("deadline-ms", 0));
  if (phase_seconds <= 0.0 || connections < 1 || workers < 1 || rows < 1 ||
      tol <= 0.0 || deadline_ms < 0) {
    return Fail("bad --phase-seconds/--connections/--workers/--rows/--tol");
  }

  tasks::TrainedTask task =
      tasks::GetTask(*kind, tasks::Regularization::kPsn, 1, CacheDir(args));
  const std::string model_name = tasks::TaskKindToString(*kind);

  serve::ServerConfig cfg;
  cfg.num_workers = workers;
  cfg.max_batch_rows =
      static_cast<int64_t>(args.GetDouble("max-batch", 64));
  cfg.max_queue_depth =
      static_cast<int64_t>(args.GetDouble("queue-cap", 256));
  // Shared knob (see CmdServeBench): the in-process request deadline and
  // the wire idle timeout both come from --timeout-ms.
  cfg.default_timeout = std::chrono::milliseconds(static_cast<int64_t>(
      args.GetDouble("timeout-ms",
                     static_cast<double>(
                         serve::ServerConfig{}.default_timeout.count()))));
  serve::InferenceServer server(cfg);
  Status st = server.RegisterModel(model_name, std::move(task.model),
                                   task.single_input_shape);
  if (!st.ok()) return Fail(st.ToString().c_str());
  st = server.Start();
  if (!st.ok()) return Fail(st.ToString().c_str());

  net::NetServerConfig net_cfg;
  net_cfg.idle_timeout = std::chrono::milliseconds(0);  // Shared knob.
  net::NetServer net(&server, net_cfg);
  st = net.Start();
  if (!st.ok()) return Fail(st.ToString().c_str());

  // One request template, re-framed per arrival by the rig.
  net::SubmitFrame request;
  request.model = model_name;
  request.qoi_tolerance = tol;
  // 0 defers to the server's default_timeout (the shared knob). A short
  // explicit deadline makes overload shedding visible as typed
  // kDeadlineExceeded frames instead of TCP-buffered latency.
  request.deadline_ms = static_cast<uint32_t>(deadline_ms);
  {
    std::vector<tensor::Tensor> batches =
        tasks::FreshInputBatches(task, 1, /*seed=*/17);
    tensor::Tensor& full = batches[0];
    const int64_t take = std::min<int64_t>(rows, full.dim(0));
    tensor::Shape shape = full.shape();
    shape[0] = take;
    tensor::Tensor input(shape);
    std::copy(full.data(), full.data() + input.size(), input.data());
    request.input = std::move(input);
  }

  std::printf(
      "net-bench: task=%s port=%u connections=%d workers=%d "
      "queue-cap=%lld rows/request=%d tol=%.1e timeout=%lldms "
      "phase=%.1fs rates=%s\n",
      model_name.c_str(), net.port(), connections, workers,
      static_cast<long long>(cfg.max_queue_depth), rows, tol,
      static_cast<long long>(cfg.default_timeout.count()), phase_seconds,
      args.Get("rates", "200,4000").c_str());

  std::string records;
  int code = 0;
  for (size_t i = 0; i < rates->size(); ++i) {
    net::NetLoadConfig load;
    load.host = "127.0.0.1";
    load.port = net.port();
    load.connections = connections;
    load.phases = {{phase_seconds, (*rates)[i]}};
    load.request = request;
    load.seed = 1 + i;
    auto stats = net::RunNetLoad(load);
    if (!stats.ok()) {
      std::fprintf(stderr, "error: rate %.0f: %s\n", (*rates)[i],
                   stats.status().ToString().c_str());
      code = 2;
      break;
    }
    std::printf("offered %.0f req/s:\n%s", (*rates)[i],
                stats->Summary().c_str());
    char rec[512];
    std::snprintf(
        rec, sizeof(rec),
        "    {\"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
        "\"submitted\": %llu, \"completed\": %llu, \"rejected\": %llu, "
        "\"backpressure\": %llu, \"deadline_shed\": %llu, "
        "\"unanswered\": %llu, \"overload_dropped\": %llu, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, "
        "\"max_ms\": %.3f}",
        stats->offered_rps, stats->achieved_rps,
        static_cast<unsigned long long>(stats->submitted),
        static_cast<unsigned long long>(stats->completed),
        static_cast<unsigned long long>(stats->rejected),
        static_cast<unsigned long long>(stats->backpressure),
        static_cast<unsigned long long>(stats->deadline_shed),
        static_cast<unsigned long long>(stats->unanswered),
        static_cast<unsigned long long>(stats->overload_dropped),
        stats->latency_p50_ms, stats->latency_p99_ms,
        stats->latency_mean_ms, stats->latency_max_ms);
    if (!records.empty()) records += ",\n";
    records += rec;
  }
  st = net.Shutdown();
  if (!st.ok()) return Fail(st.ToString().c_str());
  st = server.Shutdown();
  if (!st.ok()) return Fail(st.ToString().c_str());
  if (code != 0) return code;

  char header[256];
  std::snprintf(header, sizeof(header),
                "{\n  \"bench\": \"net_open_loop\",\n"
                "  \"task\": \"%s\",\n"
                "  \"connections\": %d,\n  \"workers\": %d,\n"
                "  \"queue_cap\": %lld,\n  \"rows_per_request\": %d,\n"
                "  \"deadline_ms\": %d,\n  \"timeout_ms\": %lld,\n"
                "  \"phase_seconds\": %.1f,\n"
                "  \"records\": [\n",
                model_name.c_str(), connections, workers,
                static_cast<long long>(cfg.max_queue_depth), rows,
                deadline_ms,
                static_cast<long long>(cfg.default_timeout.count()),
                phase_seconds);
  const std::string json_path = args.Get("json", "BENCH_net.json");
  if (!WriteFileOrWarn(json_path, std::string(header) + records + "\n  ]\n}\n")) {
    return 2;
  }
  std::printf("wrote %s (%zu rate(s))\n", json_path.c_str(), rates->size());
  return 0;
}

// Applies the global observability flags; returns false on bad input.
bool SetupObservability(const Args& args) {
  const std::string level = args.Get("log-level", "");
  if (!level.empty()) {
    if (level == "debug") {
      obs::Logger::Global().SetLevel(obs::LogLevel::kDebug);
    } else if (level == "info") {
      obs::Logger::Global().SetLevel(obs::LogLevel::kInfo);
    } else if (level == "warn") {
      obs::Logger::Global().SetLevel(obs::LogLevel::kWarn);
    } else if (level == "error") {
      obs::Logger::Global().SetLevel(obs::LogLevel::kError);
    } else {
      std::fprintf(stderr, "error: bad --log-level %s\n", level.c_str());
      return false;
    }
  }
  const std::string log_json = args.Get("log-json", "");
  if (!log_json.empty() && !obs::Logger::Global().OpenJsonFile(log_json)) {
    std::fprintf(stderr, "error: cannot open --log-json %s\n",
                 log_json.c_str());
    return false;
  }
  return true;
}

// Dumps --metrics-out / --trace-out if requested. Returns false on I/O
// failure.
bool ExportObservability(const Args& args) {
  bool ok = true;
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!metrics_out.empty()) {
    ok &= WriteFileOrWarn(metrics_out,
                          obs::MetricsRegistry::Global().ToJson());
  }
  const std::string trace_out = args.Get("trace-out", "");
  if (!trace_out.empty()) {
    ok &= WriteFileOrWarn(trace_out, obs::TraceBuffer::Global().ToChromeJson());
  }
  return ok;
}

// Starts the live metrics exporter when --metrics-export-dir is given.
// Returns nullptr (and prints an error) when the directory is unusable;
// `*enabled` tells the caller whether the flag was present at all.
std::unique_ptr<obs::MetricsExporter> StartExporter(const Args& args,
                                                    bool* enabled) {
  const std::string dir = args.Get("metrics-export-dir", "");
  *enabled = !dir.empty();
  if (dir.empty()) return nullptr;
  obs::MetricsExporterOptions options;
  options.dir = dir;
  options.interval_seconds = args.GetDouble("metrics-export-interval", 5.0);
  auto exporter = std::make_unique<obs::MetricsExporter>(options);
  if (!exporter->Start()) {
    std::fprintf(stderr, "error: cannot export metrics to %s\n",
                 dir.c_str());
    return nullptr;
  }
  return exporter;
}

void PrintUsage() {
  std::printf(
      "errorflow — error-bounded scientific inference toolkit\n\n"
      "usage:\n"
      "  errorflow inspect    <model.efm> --input-shape 1,9\n"
      "  errorflow bound      <model.efm> --input-shape 1,9 --input-err "
      "1e-4 [--norm linf|l2] [--format fp16] [--per-feature] "
      "[--attribution]\n"
      "  errorflow plan       <model.efm> --input-shape 1,9 --tol 1e-3 "
      "[--frac 0.5] [--norm linf|l2]\n"
      "  errorflow quantize   <model.efm> --input-shape 1,9 "
      "[--quantizer optq|spfq] [--calib-rows 64] [--calib-seed 1] "
      "[--norm linf|l2]\n"
      "  errorflow compress   --backend sz|zfp|mgard --tol 1e-3 [--norm "
      "linf|l2] [--rel] [--size 512x512] [--codec huffman|lz77]\n"
      "  errorflow demo-train <out.efm> [--task h2|borghesi|eurosat]\n"
      "  errorflow run        [--task h2|borghesi|eurosat] [--tol 1e-3] "
      "[--backend sz|zfp|mgard] [--norm linf|l2] [--frac 0.5] "
      "[--batches 3] [--codec huffman|lz77]\n"
      "  errorflow serve-bench [--task h2|borghesi|eurosat] "
      "[--concurrency 8] [--duration 5] [--workers 4] [--max-batch 64] "
      "[--queue-cap 1024] [--tolerances 1e-3,1e-2,1e-1] [--timeout-ms "
      "1000] [--rows 8] [--strict] [--audit 0.1] [--evict-on-violation] "
      "[--models 1] [--slo-ms 0] [--min-batch 1] [--verify-variants] "
      "[--quantizer optq|spfq] [--shards 1,2,4,8] "
      "[--json BENCH_serve.json]\n"
      "  errorflow net-bench  [--task h2|borghesi|eurosat] "
      "[--rates 200,4000] [--phase-seconds 2] [--connections 32] "
      "[--workers 4] [--queue-cap 256] [--rows 8] [--tol 1e-2] "
      "[--deadline-ms 0] [--timeout-ms 1000] [--json BENCH_net.json]\n"
      "\nglobal: --model-cache-dir <dir> (default $ERRORFLOW_CACHE_DIR or "
      "./ef_model_cache)\n"
      "\nobservability (any subcommand): --metrics-out <path.json> "
      "--trace-out <path.json> --metrics-export-dir <dir> "
      "--metrics-export-interval <seconds> --log-level "
      "debug|info|warn|error --log-json <path.jsonl>\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  if (!SetupObservability(args)) return 1;
  bool export_requested = false;
  std::unique_ptr<obs::MetricsExporter> exporter =
      StartExporter(args, &export_requested);
  if (export_requested && exporter == nullptr) return 1;
  int code = -1;
  if (cmd == "inspect") {
    code = CmdInspect(args);
  } else if (cmd == "bound") {
    code = CmdBound(args);
  } else if (cmd == "plan") {
    code = CmdPlan(args);
  } else if (cmd == "quantize") {
    code = CmdQuantize(args);
  } else if (cmd == "compress") {
    code = CmdCompress(args);
  } else if (cmd == "demo-train") {
    code = CmdDemoTrain(args);
  } else if (cmd == "run") {
    code = CmdRun(args);
  } else if (cmd == "serve-bench") {
    code = CmdServeBench(args);
  } else if (cmd == "net-bench") {
    code = CmdNetBench(args);
  } else if (cmd == "help" || cmd == "--help") {
    PrintUsage();
    code = 0;
  }
  if (code < 0) {
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    PrintUsage();
    return 1;
  }
  if (exporter != nullptr) exporter->Stop();  // Final snapshot.
  if (!ExportObservability(args) && code == 0) code = 2;
  return code;
}
